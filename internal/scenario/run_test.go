package scenario

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// crashSrc is a small but eventful scenario: a checkpointing memcached
// workload, a torn power cut, a restore, and forensic assertions. It
// exercises the crash path end to end without taking corpus-run time.
const crashSrc = `
name: unit-crash
duration_ms: 40
seed: 9
machines:
  - name: alpha
workloads:
  - machine: alpha
    group: demo
    app: memcached
    generator: etc
    items: 512
    ops_per_tick: 30
    checkpoint_every_ms: 10
events:
  - at_ms: 20
    kind: power-cut
    machine: alpha
    torn: true
  - at_ms: 22
    kind: restore
    machine: alpha
    group: demo
assertions:
  - kind: flight-contains
    machine: alpha
    event: power.cut
  - kind: audit-clean
    machine: alpha
  - kind: fsck-clean
    machine: alpha
  - kind: group-on
    machine: alpha
    group: demo
`

func TestRunDeterministicFingerprint(t *testing.T) {
	sc, err := Parse([]byte(crashSrc))
	if err != nil {
		t.Fatal(err)
	}
	a, err := Run(sc, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !a.Passed {
		t.Fatalf("scenario failed:\n%s", a.Summary())
	}
	sc2, _ := Parse([]byte(crashSrc))
	b, err := Run(sc2, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if a.Fingerprint() != b.Fingerprint() {
		t.Fatalf("same seed, different fingerprints: %s vs %s", a.Fingerprint(), b.Fingerprint())
	}
	// A different seed must actually change the observable run (otherwise
	// the fingerprint is pinning less than it claims).
	sc3, _ := Parse([]byte(crashSrc))
	c, err := Run(sc3, RunOptions{Seed: 1234})
	if err != nil {
		t.Fatal(err)
	}
	if c.Fingerprint() == a.Fingerprint() {
		t.Fatalf("seed override did not change the fingerprint")
	}
}

func TestRunNegativeExpectation(t *testing.T) {
	src := strings.Replace(crashSrc, "name: unit-crash", "name: unit-neg\nexpect: fail", 1)
	src += `
  - kind: ops-at-least
    group: demo
    min: 999999999
`
	sc, err := Parse([]byte(src))
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(sc, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.AssertionsOK {
		t.Fatal("impossible assertion reported OK")
	}
	if !res.Passed {
		t.Fatal("expect: fail scenario with tripped assertions must pass")
	}
}

// TestCorpus sweeps the shipped scenarios/ corpus — the same files CI
// fans out over — and requires every one to pass with its declared seed.
func TestCorpus(t *testing.T) {
	dir := filepath.Join("..", "..", "scenarios")
	if _, err := os.Stat(dir); err != nil {
		t.Skipf("no corpus: %v", err)
	}
	files, err := Discover(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(files) < 8 {
		t.Fatalf("corpus has %d scenarios, want >= 8", len(files))
	}
	for _, path := range files {
		path := path
		t.Run(filepath.Base(path), func(t *testing.T) {
			sc, err := Load(path)
			if err != nil {
				t.Fatal(err)
			}
			res, err := Run(sc, RunOptions{})
			if err != nil {
				t.Fatal(err)
			}
			if !res.Passed {
				t.Fatalf("scenario failed:\n%s", res.Summary())
			}
		})
	}
}

func TestWriteArtifacts(t *testing.T) {
	sc, err := Parse([]byte(crashSrc))
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(sc, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if err := res.WriteArtifacts(dir); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"summary.txt", "result.json", "flight-alpha.txt"} {
		if _, err := os.Stat(filepath.Join(dir, want)); err != nil {
			t.Fatalf("missing artifact %s: %v", want, err)
		}
	}
	fl, err := os.ReadFile(filepath.Join(dir, "flight-alpha.txt"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(fl), "power.cut") {
		t.Fatalf("flight artifact missing the cut:\n%s", fl)
	}
}
