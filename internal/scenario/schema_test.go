package scenario

import (
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

// validSrc is a minimal well-formed scenario the malformed cases mutate.
const validSrc = `
name: t
duration_ms: 10
machines:
  - name: alpha
workloads:
  - machine: alpha
    group: demo
    app: counter
assertions:
  - kind: audit-clean
    machine: alpha
`

func TestDecodeValidMinimal(t *testing.T) {
	sc, err := Parse([]byte(validSrc))
	if err != nil {
		t.Fatal(err)
	}
	if sc.Name != "t" || sc.DurationMS != 10 || len(sc.Machines) != 1 {
		t.Fatalf("decoded wrong: %+v", sc)
	}
}

func TestDecodeSpeculativeRestore(t *testing.T) {
	src := validSrc + `
  - kind: rollbacks-at-most
    group: demo
events:
  - at_ms: 5
    kind: restore
    machine: alpha
    group: demo
    restore_mode: speculative
`
	sc, err := Parse([]byte(src))
	if err != nil {
		t.Fatal(err)
	}
	if sc.Events[0].RestoreMode != "speculative" {
		t.Fatalf("restore mode = %q", sc.Events[0].RestoreMode)
	}
	a := sc.Assertions[1]
	if a.Kind != AssertRollbacksAtMost || a.Max != 0 {
		t.Fatalf("assertion = %+v", a)
	}
}

// TestDecodeMalformed drives the strict decoder and validator over the
// whole catalogue of authoring mistakes. Every case must be rejected, and
// the error must point at the offending field — a CI sweep that says
// "scenario invalid" without saying where is useless to the author.
func TestDecodeMalformed(t *testing.T) {
	cases := []struct {
		name string
		src  string
		want string // substring of the error
	}{
		{
			name: "unknown event kind",
			src: validSrc + `
events:
  - at_ms: 5
    kind: meteor-strike
    machine: alpha
`,
			want: `events[0].kind: unknown event kind "meteor-strike"`,
		},
		{
			name: "negative event time",
			src: validSrc + `
events:
  - at_ms: -3
    kind: power-cut
    machine: alpha
`,
			want: "events[0].at_ms: must not be negative",
		},
		{
			name: "event after the end",
			src: validSrc + `
events:
  - at_ms: 500
    kind: power-cut
    machine: alpha
`,
			want: "events[0].at_ms: 500 is after the scenario ends",
		},
		{
			name: "missing machine ref in workload",
			src:  strings.Replace(validSrc, "machine: alpha\n    group: demo", "machine: ghost\n    group: demo", 1),
			want: `workloads[0].machine: no machine "ghost"`,
		},
		{
			name: "missing machine ref in event",
			src: validSrc + `
events:
  - at_ms: 5
    kind: power-cut
    machine: ghost
`,
			want: `events[0].machine: no machine "ghost"`,
		},
		{
			name: "unknown field",
			src:  validSrc + "\nfleet_size: 3\n",
			want: `scenario: unknown field "fleet_size"`,
		},
		{
			name: "unknown nested field",
			src: validSrc + `
events:
  - at_ms: 5
    kind: power-cut
    machine: alpha
    explosion_radius: 9
`,
			want: `events[0]: unknown field "explosion_radius"`,
		},
		{
			name: "wrong type for duration",
			src:  strings.Replace(validSrc, "duration_ms: 10", `duration_ms: "ten"`, 1),
			want: "scenario.duration_ms: want integer, got string",
		},
		{
			name: "no machines",
			src: `
name: t
duration_ms: 10
assertions:
  - kind: audit-clean
`,
			want: "machines: at least one machine is required",
		},
		{
			name: "no assertions",
			src: `
name: t
duration_ms: 10
machines:
  - name: alpha
`,
			want: "assertions: at least one assertion is required",
		},
		{
			name: "duplicate group",
			src: `
name: t
duration_ms: 10
machines:
  - name: alpha
workloads:
  - machine: alpha
    group: demo
    app: counter
  - machine: alpha
    group: demo
    app: counter
assertions:
  - kind: audit-clean
    machine: alpha
`,
			want: `workloads[1].group: duplicate group "demo"`,
		},
		{
			name: "filebench with group",
			src:  strings.Replace(validSrc, "app: counter", "app: filebench", 1),
			want: "workloads[0].group: filebench state lives in the file system",
		},
		{
			name: "unknown app",
			src:  strings.Replace(validSrc, "app: counter", "app: postgres", 1),
			want: `workloads[0].app: unknown app "postgres"`,
		},
		{
			name: "unknown generator",
			src:  strings.Replace(validSrc, "app: counter", "app: memcached\n    generator: pareto", 1),
			want: `workloads[0].generator: unknown generator "pareto"`,
		},
		{
			name: "partition without replication",
			src: validSrc + `
events:
  - at_ms: 5
    kind: partition
    group: demo
    for_ms: 2
`,
			want: `events[0].group: no replication declared for group "demo"`,
		},
		{
			name: "replication drop probability out of range",
			src: `
name: t
duration_ms: 10
machines:
  - name: a
  - name: b
workloads:
  - machine: a
    group: demo
    app: counter
replications:
  - group: demo
    from: a
    to: b
    drop: 1.5
assertions:
  - kind: audit-clean
    machine: a
`,
			want: "replications[0].drop: probability must be in [0,1), got 1.5",
		},
		{
			name: "negative bit-rot page index",
			src: validSrc + `
events:
  - at_ms: 5
    kind: bit-rot
    machine: alpha
    pages: [0, -2]
`,
			want: "events[0].pages: negative page index -2",
		},
		{
			name: "bad expect value",
			src:  validSrc + "\nexpect: maybe\n",
			want: `expect: must be "pass" or "fail", got "maybe"`,
		},
		{
			name: "unknown assertion kind",
			src: validSrc + `
  - kind: vibes-good
    machine: alpha
`,
			want: `assertions[1].kind: unknown assertion kind "vibes-good"`,
		},
		{
			name: "p99 bound without max_us",
			src: validSrc + `
  - kind: p99-stop-under-us
    group: demo
`,
			want: "assertions[1].max_us: needs a positive bound",
		},
		{
			name: "durable window bound without max_us",
			src: validSrc + `
  - kind: durable-window-under-us
    group: demo
`,
			want: "assertions[1].max_us: needs a positive bound",
		},
		{
			name: "fold_every without wal_commit",
			src:  strings.Replace(validSrc, "app: counter", "app: counter\n    fold_every: 4", 1),
			want: "workloads[0].fold_every: only meaningful with wal_commit",
		},
		{
			name: "negative fold_every",
			src:  strings.Replace(validSrc, "app: counter", "app: counter\n    wal_commit: true\n    fold_every: -1", 1),
			want: "workloads[0].fold_every: must not be negative",
		},
		{
			name: "wal_commit without a group",
			src: `
name: t
duration_ms: 10
machines:
  - name: alpha
workloads:
  - machine: alpha
    app: filebench
    wal_commit: true
assertions:
  - kind: audit-clean
    machine: alpha
`,
			want: "workloads[0]: wal_commit/fold_every need a consistency group",
		},
		{
			name: "unknown restore mode",
			src: validSrc + `
events:
  - at_ms: 5
    kind: restore
    machine: alpha
    group: demo
    restore_mode: psychic
`,
			want: `events[0].restore_mode: unknown mode "psychic"`,
		},
		{
			name: "restore mode on a non-restore event",
			src: validSrc + `
events:
  - at_ms: 5
    kind: power-cut
    machine: alpha
    restore_mode: speculative
`,
			want: `events[0].restore_mode: only "restore" events take a restore mode`,
		},
		{
			name: "negative rollbacks bound",
			src: validSrc + `
  - kind: rollbacks-at-most
    group: demo
    max: -1
`,
			want: "assertions[1].max: must not be negative",
		},
	}

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Parse([]byte(tc.src))
			if err == nil {
				t.Fatalf("malformed scenario accepted")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

// TestGoldenRoundTrip pins the schema: the golden YAML and golden JSON
// decode to the same Scenario, and that Scenario marshals back to exactly
// the golden JSON bytes. Renaming a field, changing a tag, or altering
// omitempty behavior breaks this test — which is the point, since scenario
// files in the wild (and CI matrices built from `scenario list -json`)
// depend on the wire form.
func TestGoldenRoundTrip(t *testing.T) {
	fromYAML, err := Load(filepath.Join("testdata", "golden.yaml"))
	if err != nil {
		t.Fatal(err)
	}
	fromJSON, err := Load(filepath.Join("testdata", "golden.json"))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(fromYAML, fromJSON) {
		t.Fatalf("YAML and JSON forms decode differently:\nyaml: %+v\njson: %+v", fromYAML, fromJSON)
	}
	got, err := json.MarshalIndent(fromYAML, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	got = append(got, '\n')
	want, err := os.ReadFile(filepath.Join("testdata", "golden.json"))
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(want) {
		t.Fatalf("schema drift: re-marshaled golden scenario differs from testdata/golden.json\ngot:\n%s\nwant:\n%s", got, want)
	}
}

func TestValidateReportsAllProblemsSorted(t *testing.T) {
	src := `
name: ""
duration_ms: -1
machines:
  - name: alpha
assertions:
  - kind: audit-clean
    machine: ghost
`
	_, err := Parse([]byte(src))
	if err == nil {
		t.Fatal("accepted")
	}
	msg := err.Error()
	for _, want := range []string{"name: required", "duration_ms: must be positive", `assertions[0].machine: no machine "ghost"`} {
		if !strings.Contains(msg, want) {
			t.Fatalf("error %q missing %q", msg, want)
		}
	}
}
