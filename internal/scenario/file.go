package scenario

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Load reads and decodes one scenario file. The syntax is chosen by
// extension: .json goes through encoding/json, everything else through the
// YAML-subset parser. Both feed the same strict decoder, so the schema —
// unknown-field rejection included — is identical either way.
func Load(path string) (*Scenario, error) {
	src, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var raw map[string]any
	if strings.EqualFold(filepath.Ext(path), ".json") {
		if err := json.Unmarshal(src, &raw); err != nil {
			return nil, fmt.Errorf("%s: %w", path, err)
		}
	} else {
		if raw, err = ParseYAML(src); err != nil {
			return nil, fmt.Errorf("%s: %w", path, err)
		}
	}
	sc, err := Decode(raw)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return sc, nil
}

// Discover lists the scenario files under dir (non-recursive), sorted by
// name: the corpus a CI sweep fans out over.
func Discover(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var out []string
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		switch strings.ToLower(filepath.Ext(e.Name())) {
		case ".yaml", ".yml", ".json":
			out = append(out, filepath.Join(dir, e.Name()))
		}
	}
	sort.Strings(out)
	return out, nil
}

// WriteArtifacts dumps the run's forensic outputs under dir, one file per
// machine timeline plus the full summary — what the CI sweep uploads when
// a scenario fails.
func (r *Result) WriteArtifacts(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	if err := os.WriteFile(filepath.Join(dir, "summary.txt"), []byte(r.Summary()), 0o644); err != nil {
		return err
	}
	blob, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(filepath.Join(dir, "result.json"), append(blob, '\n'), 0o644); err != nil {
		return err
	}
	for _, f := range r.Flights {
		name := fmt.Sprintf("flight-%s.txt", f.Machine)
		if err := os.WriteFile(filepath.Join(dir, name), []byte(f.Timeline), 0o644); err != nil {
			return err
		}
	}
	if r.Metrics != nil {
		// The deterministic fleet metrics snapshot: the telemetry-golden CI
		// job runs the scenario twice and diffs this file byte-for-byte.
		blob, err := json.MarshalIndent(r.Metrics, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(filepath.Join(dir, "metrics.json"), append(blob, '\n'), 0o644); err != nil {
			return err
		}
	}
	if r.TimelineJSON != "" {
		// The merged fleet Chrome/Perfetto timeline (ui.perfetto.dev): one
		// process per machine, flow arrows across them.
		if err := os.WriteFile(filepath.Join(dir, "timeline.json"), []byte(r.TimelineJSON), 0o644); err != nil {
			return err
		}
	}
	return nil
}
