package scenario

import (
	"reflect"
	"strings"
	"testing"
)

func TestParseYAMLShapes(t *testing.T) {
	src := `
# comment
name: demo            # trailing comment
count: 3
ratio: 0.5
flag: true
nothing: null
quoted: "a: b # not a comment"
single: 'plain single'
flow: [1, 2, 3]
nested:
  inner: x
  list:
    - name: one
      n: 1
    - name: two
      n: 2
strings:
  - plain
  - "quoted"
`
	got, err := ParseYAML([]byte(src))
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]any{
		"name":    "demo",
		"count":   int64(3),
		"ratio":   0.5,
		"flag":    true,
		"nothing": nil,
		"quoted":  "a: b # not a comment",
		"single":  "plain single",
		"flow":    []any{int64(1), int64(2), int64(3)},
		"nested": map[string]any{
			"inner": "x",
			"list": []any{
				map[string]any{"name": "one", "n": int64(1)},
				map[string]any{"name": "two", "n": int64(2)},
			},
		},
		"strings": []any{"plain", "quoted"},
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("parsed:\n%#v\nwant:\n%#v", got, want)
	}
}

func TestParseYAMLRejects(t *testing.T) {
	cases := []struct {
		name string
		src  string
		want string
	}{
		{"tab indentation", "a:\n\tb: 1\n", "tab"},
		{"top level list", "- a\n- b\n", "top level must be a mapping"},
		{"bad indent", "a: 1\n   stray\n", ""},
		{"anchor", "a: &x 1\n", ""},
		{"alias", "a: *x\n", ""},
		{"flow map", "a: {b: 1}\n", ""},
		{"unterminated quote", `a: "oops` + "\n", ""},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ParseYAML([]byte(tc.src))
			if err == nil {
				t.Fatalf("accepted %q", tc.src)
			}
			if tc.want != "" && !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
			if !strings.Contains(err.Error(), "line") {
				t.Fatalf("error %q has no line position", err)
			}
		})
	}
}
