// Minimal YAML-subset parser for scenario files. The repo takes no
// third-party dependencies, and scenarios need only a small, predictable
// slice of YAML: nested maps by indentation, block lists ("- item"),
// inline flow lists ("[1, 2, 3]"), scalars (string, int, float, bool,
// null), quoted strings, and comments. Anchors, aliases, multi-line
// scalars, flow maps, and tabs are rejected with positioned errors —
// a scenario that needs them should be simplified instead.
//
// ParseYAML returns the same generic value shapes encoding/json produces
// (map[string]any, []any, string, int64, float64, bool, nil), so the
// strict schema decoder in schema.go accepts either syntax unchanged.

package scenario

import (
	"fmt"
	"strconv"
	"strings"
)

// yamlError is a parse error with a 1-based line position.
type yamlError struct {
	Line int
	Msg  string
}

func (e *yamlError) Error() string { return fmt.Sprintf("yaml: line %d: %s", e.Line, e.Msg) }

func yerrf(line int, format string, args ...any) error {
	return &yamlError{Line: line, Msg: fmt.Sprintf(format, args...)}
}

// yline is one significant (non-blank, non-comment) input line.
type yline struct {
	num    int // 1-based source line
	indent int // leading spaces
	text   string
}

// ParseYAML parses src into generic values (map[string]any / []any /
// scalars). The top level must be a map.
func ParseYAML(src []byte) (map[string]any, error) {
	lines, err := splitLines(string(src))
	if err != nil {
		return nil, err
	}
	if len(lines) == 0 {
		return map[string]any{}, nil
	}
	p := &yparser{lines: lines}
	v, err := p.block(0)
	if err != nil {
		return nil, err
	}
	if p.pos != len(p.lines) {
		return nil, yerrf(p.lines[p.pos].num, "unexpected content (bad indentation?)")
	}
	m, ok := v.(map[string]any)
	if !ok {
		return nil, yerrf(lines[0].num, "top level must be a mapping")
	}
	return m, nil
}

// splitLines strips comments and blanks and measures indentation.
func splitLines(src string) ([]yline, error) {
	var out []yline
	for i, raw := range strings.Split(src, "\n") {
		if strings.Contains(raw, "\t") {
			return nil, yerrf(i+1, "tabs are not allowed; indent with spaces")
		}
		line := stripComment(raw)
		trimmed := strings.TrimRight(line, " ")
		body := strings.TrimLeft(trimmed, " ")
		if body == "" {
			continue
		}
		if body == "---" {
			continue // document marker: tolerated, single-document only
		}
		out = append(out, yline{num: i + 1, indent: len(trimmed) - len(body), text: body})
	}
	return out, nil
}

// stripComment removes a trailing "#..." that is not inside quotes. A '#'
// opens a comment at line start or after a space, matching YAML.
func stripComment(s string) string {
	inSingle, inDouble := false, false
	for i, r := range s {
		switch {
		case r == '\'' && !inDouble:
			inSingle = !inSingle
		case r == '"' && !inSingle:
			inDouble = !inDouble
		case r == '#' && !inSingle && !inDouble:
			if i == 0 || s[i-1] == ' ' {
				return s[:i]
			}
		}
	}
	return s
}

type yparser struct {
	lines []yline
	pos   int
}

// block parses the run of lines indented at least `indent`, all at the
// same level, as either a mapping or a list.
func (p *yparser) block(indent int) (any, error) {
	if p.pos >= len(p.lines) {
		return nil, yerrf(0, "unexpected end of input")
	}
	first := p.lines[p.pos]
	if first.indent != indent {
		return nil, yerrf(first.num, "expected indentation %d, got %d", indent, first.indent)
	}
	if strings.HasPrefix(first.text, "- ") || first.text == "-" {
		return p.list(indent)
	}
	return p.mapping(indent)
}

func (p *yparser) mapping(indent int) (any, error) {
	out := make(map[string]any)
	for p.pos < len(p.lines) {
		ln := p.lines[p.pos]
		if ln.indent < indent {
			break
		}
		if ln.indent > indent {
			return nil, yerrf(ln.num, "unexpected indentation %d inside mapping at %d", ln.indent, indent)
		}
		if strings.HasPrefix(ln.text, "- ") || ln.text == "-" {
			return nil, yerrf(ln.num, "list item inside mapping")
		}
		key, rest, err := splitKey(ln)
		if err != nil {
			return nil, err
		}
		if _, dup := out[key]; dup {
			return nil, yerrf(ln.num, "duplicate key %q", key)
		}
		p.pos++
		if rest != "" {
			v, err := parseScalar(rest, ln.num)
			if err != nil {
				return nil, err
			}
			out[key] = v
			continue
		}
		// "key:" introduces a nested block — or an empty value when the
		// next line does not indent deeper.
		if p.pos < len(p.lines) && p.lines[p.pos].indent > indent {
			v, err := p.block(p.lines[p.pos].indent)
			if err != nil {
				return nil, err
			}
			out[key] = v
		} else {
			out[key] = nil
		}
	}
	return out, nil
}

func (p *yparser) list(indent int) (any, error) {
	out := []any{}
	for p.pos < len(p.lines) {
		ln := p.lines[p.pos]
		if ln.indent != indent || !(strings.HasPrefix(ln.text, "- ") || ln.text == "-") {
			break
		}
		rest := strings.TrimPrefix(strings.TrimPrefix(ln.text, "-"), " ")
		if rest == "" {
			// "-" alone: nested block on the following deeper lines.
			p.pos++
			if p.pos < len(p.lines) && p.lines[p.pos].indent > indent {
				v, err := p.block(p.lines[p.pos].indent)
				if err != nil {
					return nil, err
				}
				out = append(out, v)
			} else {
				out = append(out, nil)
			}
			continue
		}
		if k, after, kerr := splitKey(yline{num: ln.num, text: rest}); kerr == nil {
			// "- key: ..." starts an inline map item whose further keys sit
			// on deeper lines. Rewrite the current line as the first pair.
			item := make(map[string]any)
			if after != "" {
				v, err := parseScalar(after, ln.num)
				if err != nil {
					return nil, err
				}
				item[k] = v
				p.pos++
			} else {
				p.pos++
				if p.pos < len(p.lines) && p.lines[p.pos].indent > indent+2 {
					v, err := p.block(p.lines[p.pos].indent)
					if err != nil {
						return nil, err
					}
					item[k] = v
				} else {
					item[k] = nil
				}
			}
			if p.pos < len(p.lines) && p.lines[p.pos].indent == indent+2 &&
				!strings.HasPrefix(p.lines[p.pos].text, "- ") {
				more, err := p.mapping(indent + 2)
				if err != nil {
					return nil, err
				}
				for mk, mv := range more.(map[string]any) {
					if _, dup := item[mk]; dup {
						return nil, yerrf(ln.num, "duplicate key %q in list item", mk)
					}
					item[mk] = mv
				}
			}
			out = append(out, item)
			continue
		}
		// "- scalar"
		v, err := parseScalar(rest, ln.num)
		if err != nil {
			return nil, err
		}
		out = append(out, v)
		p.pos++
	}
	return out, nil
}

// splitKey splits "key: value" / "key:"; the key may be bare or quoted.
func splitKey(ln yline) (key, rest string, err error) {
	s := ln.text
	if s == "" {
		return "", "", yerrf(ln.num, "empty line in mapping")
	}
	if s[0] == '"' || s[0] == '\'' {
		q, n, err := scanQuoted(s, ln.num)
		if err != nil {
			return "", "", err
		}
		after := s[n:]
		if !strings.HasPrefix(after, ":") {
			return "", "", yerrf(ln.num, "quoted key must be followed by ':'")
		}
		return q, strings.TrimLeft(after[1:], " "), nil
	}
	i := strings.Index(s, ":")
	if i < 0 {
		return "", "", yerrf(ln.num, "expected 'key: value', got %q", s)
	}
	if i+1 < len(s) && s[i+1] != ' ' {
		return "", "", yerrf(ln.num, "missing space after ':' in %q", s)
	}
	key = strings.TrimRight(s[:i], " ")
	if key == "" {
		return "", "", yerrf(ln.num, "empty key")
	}
	return key, strings.TrimLeft(s[i+1:], " "), nil
}

// scanQuoted reads a leading quoted string, returning its value and the
// byte length consumed.
func scanQuoted(s string, line int) (string, int, error) {
	quote := s[0]
	for i := 1; i < len(s); i++ {
		if s[i] == '\\' && quote == '"' {
			i++
			continue
		}
		if s[i] == quote {
			if quote == '"' {
				v, err := strconv.Unquote(s[:i+1])
				if err != nil {
					return "", 0, yerrf(line, "bad string %q: %v", s[:i+1], err)
				}
				return v, i + 1, nil
			}
			return strings.ReplaceAll(s[1:i], "''", "'"), i + 1, nil
		}
	}
	return "", 0, yerrf(line, "unterminated string %q", s)
}

// parseScalar interprets one scalar or inline flow list.
func parseScalar(s string, line int) (any, error) {
	s = strings.TrimSpace(s)
	switch {
	case s == "":
		return nil, nil
	case s[0] == '[':
		return parseFlowList(s, line)
	case s[0] == '{':
		return nil, yerrf(line, "flow mappings {...} are not supported")
	case s[0] == '&' || s[0] == '*':
		return nil, yerrf(line, "anchors and aliases are not supported")
	case s[0] == '|' || s[0] == '>':
		return nil, yerrf(line, "block scalars are not supported")
	case s[0] == '"' || s[0] == '\'':
		v, n, err := scanQuoted(s, line)
		if err != nil {
			return nil, err
		}
		if strings.TrimSpace(s[n:]) != "" {
			return nil, yerrf(line, "trailing content after string: %q", s[n:])
		}
		return v, nil
	}
	switch s {
	case "null", "~":
		return nil, nil
	case "true":
		return true, nil
	case "false":
		return false, nil
	}
	if i, err := strconv.ParseInt(s, 0, 64); err == nil {
		return i, nil
	}
	if f, err := strconv.ParseFloat(s, 64); err == nil {
		return f, nil
	}
	return s, nil // bare string
}

// parseFlowList parses "[a, b, c]" with scalar elements.
func parseFlowList(s string, line int) (any, error) {
	if !strings.HasSuffix(s, "]") {
		return nil, yerrf(line, "unterminated flow list %q", s)
	}
	inner := strings.TrimSpace(s[1 : len(s)-1])
	out := []any{}
	if inner == "" {
		return out, nil
	}
	for _, part := range splitFlow(inner) {
		part = strings.TrimSpace(part)
		if part == "" {
			return nil, yerrf(line, "empty element in flow list %q", s)
		}
		if strings.HasPrefix(part, "[") {
			return nil, yerrf(line, "nested flow lists are not supported")
		}
		v, err := parseScalar(part, line)
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}

// splitFlow splits on commas outside quotes.
func splitFlow(s string) []string {
	var out []string
	depth := 0
	inSingle, inDouble := false, false
	start := 0
	for i, r := range s {
		switch {
		case r == '\'' && !inDouble:
			inSingle = !inSingle
		case r == '"' && !inSingle:
			inDouble = !inDouble
		case inSingle || inDouble:
		case r == '[':
			depth++
		case r == ']':
			depth--
		case r == ',' && depth == 0:
			out = append(out, s[start:i])
			start = i + 1
		}
	}
	return append(out, s[start:])
}
