package scenario

import (
	"fmt"
	"hash/fnv"
	"sort"
	"strings"
	"time"

	"aurora"
	"aurora/internal/clock"
	"aurora/internal/flight"
	"aurora/internal/net"
	"aurora/internal/placement"
	"aurora/internal/telemetry"
	"aurora/internal/trace"
)

// RunOptions tune one scenario execution.
type RunOptions struct {
	// Seed overrides the scenario's declared seed (0 keeps it; a scenario
	// with no seed defaults to 1).
	Seed int64
	// Stretch multiplies the scenario timeline — the duration, every
	// event's fire time, and partition windows — so a nightly soak run
	// keeps the same relative event script over a longer steady state
	// (cadences are rates and stay put, so a stretched run checkpoints
	// and syncs proportionally more). 0 and 1 both mean no stretching.
	Stretch int64
	// Logf, when non-nil, receives progress lines.
	Logf func(format string, args ...any)
}

// machineState is one fleet member at its current incarnation. The aurora
// Machine pointer is replaced on every reboot; declarations and bindings
// reference this wrapper so they always see the live incarnation.
type machineState struct {
	decl MachineDecl
	m    *aurora.Machine
	// dead marks a machine-dies event: unlike a power cut there is no
	// reboot — the machine is gone for the rest of the scenario and the
	// placement coordinator has to notice on its own.
	dead bool
}

// groupState is one workload's live binding.
type groupState struct {
	decl  WorkloadDecl
	host  *machineState
	g     *aurora.Group // nil for filebench (no consistency group)
	app   appBinding
	alive bool

	ops          int64
	ckpts        int64
	walCommits   int64
	lastCkptMS   int64
	rollbacks    int64 // speculative restores that fell back to serial
	stopTimes    []time.Duration
	restoreTimes []time.Duration
	// durableWindows is, per checkpoint, the span from checkpoint start to
	// the commit being durable on media — the loss window WAL-first commit
	// is designed to shrink.
	durableWindows []time.Duration
}

// replState is one declared replication's live handle.
type replState struct {
	decl  ReplDecl
	rep   *aurora.Replica
	conn  *net.Conn
	to    *machineState
	alive bool

	lastSyncMS int64
}

type runner struct {
	sc   *Scenario
	opts RunOptions
	seed int64
	clk  *clock.Virtual

	machines     map[string]*machineState
	machineOrder []string
	groups       map[string]*groupState
	groupOrder   []string
	repls        map[string]*replState
	replOrder    []string

	// coord is the fleet coordinator, non-nil when the scenario declares a
	// placement block; it owns every group's standby.
	coord *placement.Coordinator

	// tele is the metrics plane, non-nil when the scenario declares a
	// telemetry block.
	tele *teleState

	res *Result
}

// teleState is the runner's metrics plane: one registry per machine (hung
// off aurora.Machine by Config.Telemetry), one SLO watch per registry, a
// separate registry+tracer for the placement coordinator, and the fleet
// aggregation the snapshot and metric assertions read.
type teleState struct {
	decl  *TelemetryDecl
	rules []telemetry.SLO
	fleet *telemetry.Fleet
	// watches evaluates rules per machine; the coordinator's registry gets
	// its own watch so fleet.* metrics are judged where they live.
	watches    map[string]*telemetry.Watch
	coordReg   *telemetry.Registry
	coordTr    *trace.Tracer
	coordWatch *telemetry.Watch
	lastSample int64 // virtual ms of the last sampler tick
}

// sloRules compiles the declared objectives into engine rules, in
// declaration order.
func sloRules(decl *TelemetryDecl) []telemetry.SLO {
	rules := make([]telemetry.SLO, 0, len(decl.SLOs))
	for _, sd := range decl.SLOs {
		var kind telemetry.SLOKind
		switch sd.Kind {
		case SLOP99Under:
			kind = telemetry.SLOP99Under
		case SLOMaxUnder:
			kind = telemetry.SLOMaxUnder
		case SLOFinalAtLeast:
			kind = telemetry.SLOFinalAtLeast
		}
		rules = append(rules, telemetry.SLO{
			Name: sd.Name, Metric: sd.Metric, Kind: kind, Bound: sd.Bound,
		})
	}
	return rules
}

// Run executes a validated scenario and returns its Result. Setup failures
// (a machine that cannot boot, a workload that cannot bind) return an
// error; runtime failures during the timeline are recorded in the Result
// and judged by the assertions.
func Run(sc *Scenario, opts RunOptions) (*Result, error) {
	if err := sc.Validate(); err != nil {
		return nil, err
	}
	r := &runner{
		sc:       sc,
		opts:     opts,
		machines: make(map[string]*machineState),
		groups:   make(map[string]*groupState),
		repls:    make(map[string]*replState),
	}
	r.seed = opts.Seed
	if r.seed == 0 {
		r.seed = sc.Seed
	}
	if r.seed == 0 {
		r.seed = 1
	}
	r.res = &Result{Scenario: sc.Name, Seed: r.seed, Expect: sc.Expect}
	if r.res.Expect == "" {
		r.res.Expect = ExpectPass
	}
	if err := r.setup(); err != nil {
		return nil, err
	}
	r.drive()
	r.finish()
	return r.res, nil
}

func (r *runner) logf(format string, args ...any) {
	if r.opts.Logf != nil {
		r.opts.Logf(format, args...)
	}
}

// subseed derives a component seed from the scenario seed and a stable
// label, so each machine, generator, and wire has an independent PRNG
// stream that does not shift when unrelated declarations change.
func subseed(base int64, label string) int64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "%d/%s", base, label)
	s := int64(h.Sum64() & 0x7fffffffffffffff)
	if s == 0 {
		s = 1
	}
	return s
}

func (r *runner) setup() error {
	// One virtual timeline for the whole fleet: cross-machine event times
	// ("cut machine b at t=40ms") are well-defined and replayable.
	r.clk = clock.NewVirtual()
	for _, md := range r.sc.Machines {
		storage := md.StorageMB << 20
		if storage == 0 {
			storage = 256 << 20
		}
		cfg := aurora.Config{
			Name:         md.Name,
			StorageBytes: storage,
			Clock:        r.clk,
			Trace:        md.Trace,
			Telemetry:    r.sc.Telemetry != nil,
			// Every scenario machine carries a (disarmed) fault device so
			// events can cut power or rot media at any point.
			Fault: &aurora.FaultPlan{
				Seed:        subseed(r.seed, "fault/"+md.Name),
				CutAtSubmit: -1,
			},
		}
		m, err := aurora.NewMachine(cfg)
		if err != nil {
			return fmt.Errorf("machine %q: %w", md.Name, err)
		}
		ms := &machineState{decl: md, m: m}
		r.machines[md.Name] = ms
		r.machineOrder = append(r.machineOrder, md.Name)
	}

	if td := r.sc.Telemetry; td != nil {
		r.tele = &teleState{
			decl:    td,
			rules:   sloRules(td),
			fleet:   telemetry.NewFleet(),
			watches: make(map[string]*telemetry.Watch),
		}
		for _, name := range r.machineOrder {
			ms := r.machines[name]
			w := telemetry.NewWatch(r.tele.rules)
			r.tele.watches[name] = w
			ms.m.AttachSLO(w)
			r.tele.fleet.Add(name, ms.m.Metrics)
		}
	}

	tick := r.tick()
	for i, wd := range r.sc.Workloads {
		ms := r.machines[wd.Machine]
		gs := &groupState{decl: wd, host: ms, alive: true}
		genSeed := subseed(r.seed, fmt.Sprintf("gen/%d/%s", i, wd.Group))
		var err error
		switch wd.App {
		case AppCounter:
			gs.app, gs.g, err = newCounterApp(ms, wd.Group)
		case AppMemcached:
			var a *memcachedApp
			a, gs.g, err = newMemcachedApp(ms, wd, genSeed)
			gs.app = a
		case AppRocksDB:
			var a *rocksdbApp
			a, gs.g, err = newRocksDBApp(ms, wd, genSeed)
			gs.app = a
		case AppFilebench:
			gs.app = newFilebenchApp(ms, wd, genSeed, tick)
		}
		if err != nil {
			return fmt.Errorf("workload %q on %q: %w", wd.App, wd.Machine, err)
		}
		if gs.g != nil && wd.FoldEvery > 0 {
			gs.g.Options.FoldEvery = int(wd.FoldEvery)
		}
		key := wd.Group
		if key == "" {
			key = fmt.Sprintf("filebench/%d", i)
		}
		r.groups[key] = gs
		r.groupOrder = append(r.groupOrder, key)
	}

	for _, rd := range r.sc.Replications {
		src := r.machines[rd.From]
		dst := r.machines[rd.To]
		gs := r.groups[rd.Group]
		conn := src.m.NewConn(&aurora.NetConfig{
			Fwd: aurora.NetPlan{
				Seed:        subseed(r.seed, "wire/fwd/"+rd.Group),
				DropProb:    rd.Drop,
				DupProb:     rd.Dup,
				ReorderProb: rd.Reorder,
				CorruptProb: rd.Corrupt,
			},
			Rev: aurora.NetPlan{
				Seed:     subseed(r.seed, "wire/rev/"+rd.Group),
				DropProb: rd.Drop,
			},
		})
		rep, err := gs.g.ReplicateToVia(dst.m.SLS, conn)
		if err != nil {
			// A lossy wire can cut off even the seed transfer; the handle
			// stays live and a later sync resumes it.
			if rep == nil {
				return fmt.Errorf("replicating %q: %w", rd.Group, err)
			}
			r.res.Errors = append(r.res.Errors, fmt.Sprintf("seed of %q interrupted: %v", rd.Group, err))
		}
		r.repls[rd.Group] = &replState{decl: rd, rep: rep, conn: conn, to: dst, alive: true}
		r.replOrder = append(r.replOrder, rd.Group)
	}

	if p := r.sc.Placement; p != nil {
		cfg := p.EffectiveConfig()
		if p.HeartbeatDrop > 0 {
			drop := p.HeartbeatDrop
			seed := r.seed
			cfg.HeartbeatPlan = func(node string) net.Plan {
				return net.Plan{Seed: subseed(seed, "hb/"+node), DropProb: drop}
			}
		}
		r.coord = placement.New(r.clk, cfg)
		if r.tele != nil {
			// The coordinator gets its own registry and tracer: fleet.*
			// counters and failover/migration latency histograms live here,
			// and its placement-decision spans join the merged timeline as
			// the "coordinator" process.
			r.tele.coordReg = telemetry.New(r.clk)
			r.tele.coordTr = trace.New(r.clk)
			r.tele.coordWatch = telemetry.NewWatch(r.tele.rules)
			r.coord.Instrument(r.tele.coordTr, r.tele.coordReg)
			r.coord.WatchSLO(r.tele.coordWatch)
			r.tele.fleet.Add("fleet", r.tele.coordReg)
		}
		for _, name := range r.machineOrder {
			if _, err := r.coord.AddMachine(name, r.machines[name].m); err != nil {
				return fmt.Errorf("placement: %w", err)
			}
		}
		// Manage every group workload: the coordinator picks and seeds the
		// standby, and drives the app between migration pre-copy rounds.
		for _, key := range r.groupOrder {
			gs := r.groups[key]
			if gs.g == nil {
				continue // filebench: no consistency group to protect
			}
			work := func() error {
				n := gs.decl.EffectiveOpsPerTick()
				if err := gs.app.step(n); err != nil {
					return err
				}
				gs.ops += n
				return nil
			}
			if _, err := r.coord.Manage(key, gs.decl.Machine, work); err != nil {
				return fmt.Errorf("placement: managing %q: %w", key, err)
			}
		}
	}
	return nil
}

func (r *runner) tick() time.Duration {
	t := r.sc.TickMS
	if t <= 0 {
		t = 1
	}
	return time.Duration(t) * time.Millisecond
}

func (r *runner) stretch() int64 {
	if r.opts.Stretch > 1 {
		return r.opts.Stretch
	}
	return 1
}

func (r *runner) duration() time.Duration {
	return time.Duration(r.sc.DurationMS*r.stretch()) * time.Millisecond
}

// eventAt is an event's stretched fire time in virtual milliseconds.
func (r *runner) eventAt(e EventDecl) int64 { return e.AtMS * r.stretch() }

// drive is the deterministic main loop: one shared virtual timeline,
// advanced tick by tick; events fire when their time arrives, workloads
// step in declaration order, cadences (checkpoints, syncs) trigger on
// their periods. Everything iterates in declaration order — never over a
// map — so a seed replays bit-identically.
func (r *runner) drive() {
	clk := r.clk
	end := r.duration()
	tick := r.tick()

	// Events fire in (time, declaration) order.
	evOrder := make([]int, len(r.sc.Events))
	for i := range evOrder {
		evOrder[i] = i
	}
	sort.SliceStable(evOrder, func(a, b int) bool {
		return r.sc.Events[evOrder[a]].AtMS < r.sc.Events[evOrder[b]].AtMS
	})
	nextEv := 0

	for clk.Now() < end {
		target := clk.Now() + tick
		nowMS := int64(clk.Now() / time.Millisecond)

		for nextEv < len(evOrder) && r.eventAt(r.sc.Events[evOrder[nextEv]]) <= nowMS {
			r.fire(r.sc.Events[evOrder[nextEv]])
			nextEv++
		}

		for _, key := range r.groupOrder {
			gs := r.groups[key]
			if !gs.alive {
				continue
			}
			n := gs.decl.EffectiveOpsPerTick()
			if err := gs.app.step(n); err != nil {
				r.recordErr("workload %s: %v", key, err)
				gs.alive = false
				continue
			}
			gs.ops += n
			if r.coord != nil && gs.g != nil {
				r.coord.RecordOps(key, n)
			}
			if gs.decl.CheckpointEveryMS > 0 && nowMS-gs.lastCkptMS >= gs.decl.CheckpointEveryMS {
				gs.lastCkptMS = nowMS
				r.checkpointGroup(key, gs)
			}
		}

		for _, name := range r.replOrder {
			rs := r.repls[name]
			if !rs.alive || rs.decl.SyncEveryMS <= 0 || nowMS-rs.lastSyncMS < rs.decl.SyncEveryMS {
				continue
			}
			rs.lastSyncMS = nowMS
			r.syncRepl(name, rs)
		}

		if r.coord != nil {
			r.applyFleetEvents(r.coord.Tick())
		}

		if t := r.tele; t != nil && nowMS-t.lastSample >= t.decl.EffectiveSampleEvery() {
			t.lastSample = nowMS
			r.sampleTelemetry()
		}

		if clk.Now() < target {
			clk.Advance(target - clk.Now())
		}
	}

	// Late events (scheduled at or past the end) still fire once, so a
	// scenario can end on a final checkpoint or audit trigger.
	for nextEv < len(evOrder) {
		ev := r.sc.Events[evOrder[nextEv]]
		if r.eventAt(ev) <= r.sc.DurationMS*r.stretch() {
			r.fire(ev)
		}
		nextEv++
	}
}

// sampleTelemetry is one sampler-cadence tick: every registry snapshots
// its counters/gauges/histogram-p99s into their time series, then the SLO
// watch runs. A fired breach lands in three places at once — the hosting
// machine's flight recorder (slo.breach), its registry's slo.breaches
// counter (the sls.slo audit family cross-checks counter against breach
// log), and the run result.
func (r *runner) sampleTelemetry() {
	now := r.clk.Now()
	for _, name := range r.machineOrder {
		ms := r.machines[name]
		reg := ms.m.Metrics
		reg.Sample()
		for _, b := range r.tele.watches[name].Eval(reg, now) {
			reg.Counter("slo.breaches").Add(1)
			ms.m.Flight.Record(int64(now), flight.EvSLOBreach,
				b.Value, b.Bound, int64(now/time.Microsecond), b.SLO)
			r.recordBreach(name, b)
		}
	}
	if cr := r.tele.coordReg; cr != nil {
		cr.Sample()
		for _, b := range r.tele.coordWatch.Eval(cr, now) {
			cr.Counter("slo.breaches").Add(1)
			r.recordBreach("fleet", b)
		}
	}
}

func (r *runner) recordBreach(machine string, b telemetry.Breach) {
	r.res.SLOBreaches = append(r.res.SLOBreaches, SLOBreach{Machine: machine, Breach: b})
	r.logf("slo breach on %s: %s", machine, b)
}

func (r *runner) recordErr(format string, args ...any) {
	msg := fmt.Sprintf(format, args...)
	r.res.Errors = append(r.res.Errors, msg)
	r.logf("error: %s", msg)
}

func (r *runner) recordEvent(e EventDecl, target string, err error) {
	ev := ExecutedEvent{
		AtMS:    e.AtMS,
		FiredNS: int64(r.clk.Now()),
		Kind:    e.Kind,
		Target:  target,
	}
	if err != nil {
		ev.Err = err.Error()
	}
	r.res.Events = append(r.res.Events, ev)
	if err != nil {
		r.logf("t=%dms %s %s: %v", e.AtMS, e.Kind, target, err)
	} else {
		r.logf("t=%dms %s %s", e.AtMS, e.Kind, target)
	}
}

func (r *runner) checkpointGroup(key string, gs *groupState) {
	if gs.g == nil {
		// Filebench workload: persist the whole store instead.
		if _, err := gs.host.m.Store.Checkpoint(); err != nil {
			r.recordErr("store checkpoint on %s: %v", gs.host.decl.Name, err)
			return
		}
		gs.ckpts++
		return
	}
	start := r.clk.Now()
	st, err := gs.g.Checkpoint(gs.ckptKind())
	if err != nil {
		r.recordErr("checkpoint %s: %v", key, err)
		gs.alive = false
		return
	}
	if err := gs.g.Barrier(); err != nil {
		r.recordErr("barrier %s: %v", key, err)
		gs.alive = false
		return
	}
	gs.record(st, start)
}

// ckptKind is the checkpoint kind this workload declared: WAL-first when
// wal_commit is set, a full incremental epoch otherwise.
func (gs *groupState) ckptKind() aurora.CheckpointKind {
	if gs.decl.WALCommit {
		return aurora.CkptWAL
	}
	return aurora.CkptIncremental
}

// record books one committed checkpoint: its stop time and the durable
// window from checkpoint start to the commit persisting on media.
func (gs *groupState) record(st aurora.CheckpointStats, start time.Duration) {
	gs.ckpts++
	if st.WALSeq != 0 {
		gs.walCommits++
	}
	gs.stopTimes = append(gs.stopTimes, st.StopTime)
	w := st.DurableAt - start
	if w < 0 {
		w = 0
	}
	gs.durableWindows = append(gs.durableWindows, w)
}

// applyWALOptions re-applies the workload's declared WAL fold cadence to a
// (possibly fresh) group incarnation after restore/failover/migrate.
func (gs *groupState) applyWALOptions() {
	if gs.g != nil && gs.decl.FoldEvery > 0 {
		gs.g.Options.FoldEvery = int(gs.decl.FoldEvery)
	}
}

func (r *runner) syncRepl(name string, rs *replState) {
	if err := rs.rep.Sync(); err != nil {
		// Expected under partitions: the ship stays pending and the next
		// sync resumes from the standby's high-water mark.
		r.res.Errors = append(r.res.Errors, fmt.Sprintf("sync %s: %v", name, err))
		r.logf("sync %s: %v", name, err)
	}
}

// fire dispatches one timed event.
func (r *runner) fire(e EventDecl) {
	switch e.Kind {
	case EvPowerCut:
		r.firePowerCut(e)
	case EvRestore:
		r.fireRestore(e)
	case EvPartition:
		rs := r.repls[e.Group]
		rs.conn.Pipe().Cut(time.Duration(e.ForMS*r.stretch()) * time.Millisecond)
		r.recordEvent(e, e.Group, nil)
	case EvBitRot:
		r.fireBitRot(e)
	case EvMigrate:
		r.fireMigrate(e)
	case EvFailover:
		r.fireFailover(e)
	case EvCheckpoint:
		r.fireCheckpoint(e)
	case EvMachineDies:
		r.fireMachineDies(e)
	case EvRebalance:
		r.recordEvent(e, "fleet", nil)
		r.applyFleetEvents(r.coord.Rebalance())
	case EvSync:
		rs := r.repls[e.Group]
		if !rs.alive {
			r.recordEvent(e, e.Group, fmt.Errorf("replication is down"))
			return
		}
		err := rs.rep.Sync()
		r.recordEvent(e, e.Group, err)
	}
}

func (r *runner) firePowerCut(e EventDecl) {
	ms := r.machines[e.Machine]
	m2, err := ms.m.PowerCut(subseed(r.seed, fmt.Sprintf("cut/%s/%d", e.Machine, e.AtMS)), e.Torn, e.DropInFlight)
	r.recordEvent(e, e.Machine, err)
	if err != nil {
		return
	}
	ms.m = m2
	if r.tele != nil {
		// The registry rode across the reboot but the watch attachment is
		// volatile machine state — re-point the fresh incarnation's auditor
		// at the same watch so the sls.slo cross-check keeps running.
		m2.AttachSLO(r.tele.watches[e.Machine])
	}
	// Volatile state is gone: every group hosted here is down until an
	// explicit restore (or failover on its standby) brings it back, and
	// every replication touching this machine loses its live handles.
	for _, key := range r.groupOrder {
		gs := r.groups[key]
		if gs.host != ms {
			continue
		}
		if gs.decl.App == AppFilebench {
			// Filebench state is the file system, which the reboot just
			// recovered — the workload resumes against the fresh FS.
			continue
		}
		gs.alive = false
		gs.g = nil
	}
	for _, name := range r.replOrder {
		rs := r.repls[name]
		if rs.decl.From == e.Machine || rs.decl.To == e.Machine {
			rs.alive = false
		}
	}
}

// fireMachineDies kills a machine for good: its groups stop producing
// work immediately, but nobody tells the coordinator — the heartbeat
// detector has to notice the silence and fail the groups over.
func (r *runner) fireMachineDies(e EventDecl) {
	ms := r.machines[e.Machine]
	ms.dead = true
	err := r.coord.KillMachine(e.Machine)
	r.recordEvent(e, e.Machine, err)
	if err != nil {
		return
	}
	for _, key := range r.groupOrder {
		gs := r.groups[key]
		if gs.host != ms {
			continue
		}
		gs.alive = false
		if gs.decl.App != AppFilebench {
			gs.g = nil
		}
	}
}

// applyFleetEvents records coordinator decisions in the result and
// rebinds applications whose group moved (failover or rebalance).
func (r *runner) applyFleetEvents(evs []placement.Event) {
	for _, e := range evs {
		target := e.Group
		if target == "" {
			target = e.Node
		}
		if e.From != "" || e.To != "" {
			target += " " + e.From + "->" + e.To
		}
		ev := ExecutedEvent{
			AtMS:    int64(e.At / time.Millisecond),
			FiredNS: int64(e.At),
			Kind:    "fleet-" + e.Kind.String(),
			Target:  target,
		}
		if e.Err != nil {
			ev.Err = e.Err.Error()
		}
		r.res.Events = append(r.res.Events, ev)
		r.logf("fleet %s", e)
		if e.G == nil {
			continue
		}
		gs, ok := r.groups[e.Group]
		if !ok {
			continue
		}
		gs.g = e.G
		gs.host = r.machines[e.To]
		gs.alive = true
		gs.applyWALOptions()
		if err := gs.app.rebind(gs); err != nil {
			r.recordErr("rebind %s after fleet %s: %v", e.Group, e.Kind, err)
			gs.alive = false
		}
	}
}

func (r *runner) fireRestore(e EventDecl) {
	ms := r.machines[e.Machine]
	gs := r.groups[e.Group]
	var (
		g   *aurora.Group
		rst aurora.RestoreStats
		err error
	)
	switch e.RestoreMode {
	case "lazy":
		g, rst, err = ms.m.RestoreLazily(e.Group)
	case "speculative":
		g, rst, err = ms.m.RestoreSpeculatively(e.Group)
	default: // "" and "serial": the eager path
		g, rst, err = ms.m.Restore(e.Group)
	}
	r.recordEvent(e, e.Machine+"/"+e.Group, err)
	if err != nil {
		return
	}
	gs.g = g
	gs.host = ms
	gs.alive = true
	gs.applyWALOptions()
	if e.RestoreMode == "speculative" {
		// The budget that matters speculatively is time-to-first-op —
		// restores-under-us bounds exactly the span the mode shrinks.
		gs.restoreTimes = append(gs.restoreTimes, rst.TimeToFirstOp)
		gs.rollbacks += int64(rst.Rollbacks)
	} else {
		gs.restoreTimes = append(gs.restoreTimes, rst.Time)
	}
	if err := gs.app.rebind(gs); err != nil {
		r.recordErr("rebind %s: %v", e.Group, err)
		gs.alive = false
	}
}

func (r *runner) fireBitRot(e EventDecl) {
	ms := r.machines[e.Machine]
	addrs := ms.m.Store.LivePageAddrs()
	if len(addrs) == 0 {
		r.recordEvent(e, e.Machine, fmt.Errorf("no live pages to rot"))
		return
	}
	offsets := make([]int64, 0, len(e.Pages))
	for _, pg := range e.Pages {
		// Index into the live-page list, modulo its size, so a scenario can
		// say "rot pages 0, 7, 13" without knowing the store layout.
		offsets = append(offsets, addrs[pg%int64(len(addrs))])
	}
	err := ms.m.BitRot(offsets...)
	r.recordEvent(e, e.Machine, err)
}

func (r *runner) fireMigrate(e EventDecl) {
	gs := r.groups[e.Group]
	if !gs.alive || gs.g == nil {
		r.recordEvent(e, e.Group, fmt.Errorf("group is down"))
		return
	}
	if r.coord != nil {
		// Placement mode: the move goes through the coordinator so its
		// assignment map stays authoritative (it retires the old replica
		// and reseeds a standby from the new primary).
		evs, err := r.coord.MigrateGroup(e.Group, e.To)
		r.recordEvent(e, e.Group+"->"+e.To, err)
		r.applyFleetEvents(evs)
		return
	}
	src := gs.host
	dst := r.machines[e.To]
	rounds := int(e.EffectiveRounds())
	work := func() error {
		// The application keeps running between pre-copy rounds; its dirty
		// pages become the next round's delta.
		n := gs.decl.EffectiveOpsPerTick()
		if err := gs.app.step(n); err != nil {
			return err
		}
		gs.ops += n
		return nil
	}
	g2, mst, err := src.m.MigrateTo(dst.m, e.Group, rounds, work)
	r.recordEvent(e, e.Group+"->"+e.To, err)
	if err != nil {
		// A failed migration leaves the source intact: the stream never
		// finished, so the group was neither exited nor forgotten there.
		// It keeps running where it is.
		return
	}
	gs.g = g2
	gs.host = dst
	gs.applyWALOptions()
	gs.stopTimes = append(gs.stopTimes, mst.FinalStop)
	if err := gs.app.rebind(gs); err != nil {
		r.recordErr("rebind %s after migrate: %v", e.Group, err)
		gs.alive = false
	}
}

func (r *runner) fireFailover(e EventDecl) {
	rs := r.repls[e.Group]
	gs := r.groups[e.Group]
	if rs.rep == nil {
		r.recordEvent(e, e.Group, fmt.Errorf("replication never established"))
		return
	}
	g2, rst, err := rs.rep.Failover(aurora.RestoreEager)
	r.recordEvent(e, e.Group+"@"+rs.decl.To, err)
	if err != nil {
		return
	}
	gs.g = g2
	gs.host = rs.to
	gs.alive = true
	gs.applyWALOptions()
	gs.restoreTimes = append(gs.restoreTimes, rst.Time)
	rs.alive = false // the standby is now the primary; the old wire is done
	if err := gs.app.rebind(gs); err != nil {
		r.recordErr("rebind %s after failover: %v", e.Group, err)
		gs.alive = false
	}
}

func (r *runner) fireCheckpoint(e EventDecl) {
	if e.Group != "" {
		gs := r.groups[e.Group]
		if !gs.alive || gs.g == nil {
			r.recordEvent(e, e.Group, fmt.Errorf("group is down"))
			return
		}
		start := r.clk.Now()
		st, err := gs.g.Checkpoint(gs.ckptKind())
		if err == nil {
			err = gs.g.Barrier()
		}
		r.recordEvent(e, e.Group, err)
		if err == nil {
			gs.record(st, start)
		}
		return
	}
	ms := r.machines[e.Machine]
	_, err := ms.m.Store.Checkpoint()
	r.recordEvent(e, e.Machine, err)
}

// finish evaluates assertions and assembles the result.
func (r *runner) finish() {
	r.res.ElapsedNS = int64(r.clk.Now())

	if r.tele != nil {
		// One last sampler tick so the final counter totals land in the
		// series, then the end-of-run SLO pass: final-at-least objectives
		// only have a verdict now that the run is over.
		r.sampleTelemetry()
		now := r.clk.Now()
		finalEval := func(machine string, w *telemetry.Watch, reg *telemetry.Registry) {
			for _, b := range w.Final(reg, now) {
				if b.Kind == telemetry.SLOFinalAtLeast.String() {
					r.recordBreach(machine, b)
				}
			}
		}
		for _, name := range r.machineOrder {
			finalEval(name, r.tele.watches[name], r.machines[name].m.Metrics)
		}
		if r.tele.coordReg != nil {
			finalEval("fleet", r.tele.coordWatch, r.tele.coordReg)
		}
		snap := r.tele.fleet.FleetSnapshot()
		snap.Breaches = make([]telemetry.Breach, 0, len(r.res.SLOBreaches))
		for _, b := range r.res.SLOBreaches {
			snap.Breaches = append(snap.Breaches, b.Breach)
		}
		r.res.Metrics = &snap
		r.res.TimelineJSON = r.fleetTimeline()
	}

	for _, name := range r.machineOrder {
		ms := r.machines[name]
		r.res.Flights = append(r.res.Flights, MachineFlight{
			Machine:  name,
			Timeline: r.combinedFlight(ms),
		})
	}
	for _, key := range r.groupOrder {
		gs := r.groups[key]
		st := GroupStat{
			Group:        key,
			Machine:      gs.host.decl.Name,
			Alive:        gs.alive,
			Ops:          gs.ops,
			Checkpoints:  gs.ckpts,
			WALCommits:   gs.walCommits,
			Restores:     int64(len(gs.restoreTimes)),
			Rollbacks:    gs.rollbacks,
			P99StopUS:    p99us(gs.stopTimes),
			P99DurableUS: p99us(gs.durableWindows),
		}
		if rs, ok := r.repls[key]; ok && rs.rep != nil {
			st.StandbyEpoch = int64(rs.rep.Base())
			st.Syncs = int64(rs.rep.Syncs)
		}
		if r.coord != nil {
			if a, ok := r.coord.Assignment(key); ok {
				st.StandbyEpoch = a.StandbyEpoch()
				st.Syncs = a.Syncs
			}
		}
		r.res.Groups = append(r.res.Groups, st)
	}

	allOK := true
	for _, a := range r.sc.Assertions {
		ar := r.evaluate(a)
		r.res.Assertions = append(r.res.Assertions, ar)
		if !ar.Pass {
			allOK = false
		}
	}
	r.res.AssertionsOK = allOK
	if r.res.Expect == ExpectFail {
		r.res.Passed = !allOK
	} else {
		r.res.Passed = allOK
	}
}

// fleetTimeline merges every traced machine's tracer — plus the placement
// coordinator's, when instrumented — into one Chrome/Perfetto trace: one
// process per machine, cross-machine causality (replication ships,
// kill -> failover -> promote chains) drawn as flow arrows. Empty when no
// machine declared trace: true.
func (r *runner) fleetTimeline() string {
	var ms []telemetry.MachineTimeline
	for _, name := range r.machineOrder {
		if m := r.machines[name].m; m.Tracer != nil {
			ms = append(ms, telemetry.MachineTimeline{Name: name, T: m.Tracer})
		}
	}
	if len(ms) == 0 {
		return ""
	}
	if r.tele.coordTr != nil {
		ms = append(ms, telemetry.MachineTimeline{Name: "coordinator", T: r.tele.coordTr})
	}
	var sb strings.Builder
	if err := telemetry.WriteFleetChrome(&sb, ms); err != nil {
		r.recordErr("fleet timeline export: %v", err)
		return ""
	}
	return sb.String()
}

// combinedFlight assembles a machine's forensic timeline: the ring the
// store persisted before the last crash, the fault device's crash log (cut
// and torn events can never be inside the checkpoint they interrupt), and
// the live post-boot ring, merged by virtual time.
func (r *runner) combinedFlight(ms *machineState) string {
	var evs []aurora.FlightEvent
	if rec, _, ok, err := ms.m.RecoveredFlight(); err == nil && ok {
		evs = append(evs, rec...)
	}
	if ms.m.Fault != nil {
		evs = append(evs, ms.m.Fault.CrashLog()...)
	}
	evs = append(evs, ms.m.Flight.Events()...)
	sort.SliceStable(evs, func(i, j int) bool { return evs[i].At < evs[j].At })
	var sb []byte
	for _, ev := range evs {
		sb = append(sb, ev.String()...)
		sb = append(sb, '\n')
	}
	return string(sb)
}

func (r *runner) evaluate(a AssertionDecl) AssertionResult {
	ar := AssertionResult{Decl: a}
	min := a.Min
	if min <= 0 {
		min = 1
	}
	pass := func(ok bool, format string, args ...any) AssertionResult {
		ar.Pass = ok
		ar.Detail = fmt.Sprintf(format, args...)
		return ar
	}
	switch a.Kind {
	case AssertAuditClean:
		rep := r.machines[a.Machine].m.Audit()
		if !rep.OK() {
			return pass(false, "%d violations, first: %s", len(rep.Violations), rep.Violations[0])
		}
		return pass(true, "0 violations")
	case AssertFsckClean:
		rep := r.machines[a.Machine].m.Store.Fsck()
		if len(rep.Problems) > 0 {
			return pass(false, "%d problems, first: %s", len(rep.Problems), rep.Problems[0])
		}
		return pass(true, "%d objects, %d pages scrubbed", rep.Objects, rep.ScrubbedPages)
	case AssertFsckProblems:
		rep := r.machines[a.Machine].m.Store.Fsck()
		return pass(int64(len(rep.Problems)) >= min, "%d problems (want >= %d)", len(rep.Problems), min)
	case AssertFlightContains:
		timeline := ""
		for _, mf := range r.res.Flights {
			if mf.Machine == a.Machine {
				timeline = mf.Timeline
			}
		}
		n := countFlightKind(timeline, a.Event)
		return pass(n >= min, "%d %q events (want >= %d)", n, a.Event, min)
	case AssertStandbyMinEpoch:
		rs := r.repls[a.Group]
		got := int64(rs.rep.Base())
		return pass(got >= min, "standby epoch %d (want >= %d)", got, min)
	case AssertSyncsAtLeast:
		rs := r.repls[a.Group]
		return pass(int64(rs.rep.Syncs) >= min, "%d syncs (want >= %d)", rs.rep.Syncs, min)
	case AssertOpsAtLeast:
		gs := r.groups[a.Group]
		return pass(gs.ops >= min, "%d ops (want >= %d)", gs.ops, min)
	case AssertCkptsAtLeast:
		gs := r.groups[a.Group]
		return pass(gs.ckpts >= min, "%d checkpoints (want >= %d)", gs.ckpts, min)
	case AssertGroupOn:
		gs := r.groups[a.Group]
		ok := gs.alive && gs.host.decl.Name == a.Machine
		return pass(ok, "group on %q alive=%v (want on %q)", gs.host.decl.Name, gs.alive, a.Machine)
	case AssertP99StopUnderUS:
		gs := r.groups[a.Group]
		if len(gs.stopTimes) == 0 {
			return pass(false, "no checkpoints measured")
		}
		p99 := p99us(gs.stopTimes)
		return pass(p99 <= a.MaxUS, "p99 stop %dus over %d checkpoints (want <= %dus)", p99, len(gs.stopTimes), a.MaxUS)
	case AssertDurableWindowUnderUS:
		gs := r.groups[a.Group]
		if len(gs.durableWindows) == 0 {
			return pass(false, "no checkpoints measured")
		}
		p99 := p99us(gs.durableWindows)
		return pass(p99 <= a.MaxUS, "p99 durable window %dus over %d commits (%d via WAL, want <= %dus)",
			p99, len(gs.durableWindows), gs.walCommits, a.MaxUS)
	case AssertFleetHealth:
		if r.coord == nil {
			return pass(false, "no placement coordinator")
		}
		ok := r.coord.Protected() && r.coord.Orphans() == 0
		return pass(ok, "protected=%v orphans=%d failovers=%d rebalances=%d",
			r.coord.Protected(), r.coord.Orphans(), r.coord.Failovers(), r.coord.Rebalances())
	case AssertFailoversAtLeast:
		if r.coord == nil {
			return pass(false, "no placement coordinator")
		}
		return pass(r.coord.Failovers() >= min, "%d failovers (want >= %d)", r.coord.Failovers(), min)
	case AssertRestoreUnderUS:
		gs := r.groups[a.Group]
		if len(gs.restoreTimes) == 0 {
			return pass(false, "no restores measured")
		}
		worst := int64(0)
		for _, t := range gs.restoreTimes {
			if us := int64(t / time.Microsecond); us > worst {
				worst = us
			}
		}
		return pass(worst <= a.MaxUS, "worst restore %dus over %d restores (want <= %dus)", worst, len(gs.restoreTimes), a.MaxUS)
	case AssertRollbacksAtMost:
		gs := r.groups[a.Group]
		return pass(gs.rollbacks <= a.Max, "%d speculation rollback(s) (want <= %d)", gs.rollbacks, a.Max)
	case AssertMetricP99Under:
		h := r.metricHistogram(a)
		if h == nil || h.Samples() == 0 {
			return pass(false, "no samples for metric %q", a.Metric)
		}
		p99 := h.Quantile(0.99)
		return pass(p99 < a.Max, "%s p99 %dns over %d samples (want < %dns)%s",
			a.Metric, p99, h.Samples(), a.Max, r.metricScope(a))
	case AssertMetricMaxUnder:
		max, found := int64(0), false
		for _, reg := range r.metricRegistries(a) {
			for _, p := range reg.SeriesPoints(a.Metric) {
				found = true
				if p.V > max {
					max = p.V
				}
			}
		}
		if !found {
			return pass(false, "no series for metric %q", a.Metric)
		}
		return pass(max < a.Max, "%s max %d (want < %d)%s", a.Metric, max, a.Max, r.metricScope(a))
	case AssertMetricFinalAtLeast:
		total, found := int64(0), false
		for _, reg := range r.metricRegistries(a) {
			if pts := reg.SeriesPoints(a.Metric); len(pts) > 0 {
				found = true
				total += pts[len(pts)-1].V
			}
		}
		if !found {
			return pass(false, "no series for metric %q", a.Metric)
		}
		return pass(total >= min, "%s final %d (want >= %d)%s", a.Metric, total, min, r.metricScope(a))
	}
	return pass(false, "unknown assertion kind %q", a.Kind)
}

// metricRegistries resolves the registries a metric assertion reads: one
// machine's when `machine` is set, otherwise every fleet member plus the
// coordinator's, in registration order.
func (r *runner) metricRegistries(a AssertionDecl) []*telemetry.Registry {
	if r.tele == nil {
		return nil
	}
	if a.Machine != "" {
		return []*telemetry.Registry{r.machines[a.Machine].m.Metrics}
	}
	regs := make([]*telemetry.Registry, 0, len(r.machineOrder)+1)
	for _, name := range r.machineOrder {
		regs = append(regs, r.machines[name].m.Metrics)
	}
	if r.tele.coordReg != nil {
		regs = append(regs, r.tele.coordReg)
	}
	return regs
}

// metricHistogram merges the named histogram across the assertion's scope.
func (r *runner) metricHistogram(a AssertionDecl) *trace.Histogram {
	var out *trace.Histogram
	for _, reg := range r.metricRegistries(a) {
		h := reg.HistogramCopy(a.Metric)
		if h == nil {
			continue
		}
		if out == nil {
			out = trace.NewHistogram(a.Metric)
		}
		out.Merge(h)
	}
	return out
}

// metricScope labels the assertion detail with where the metric was read.
func (r *runner) metricScope(a AssertionDecl) string {
	if a.Machine != "" {
		return " on " + a.Machine
	}
	return " fleet-wide"
}

// p99us returns the 99th-percentile of the samples in microseconds.
func p99us(samples []time.Duration) int64 {
	if len(samples) == 0 {
		return 0
	}
	s := append([]time.Duration(nil), samples...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	idx := len(s) * 99 / 100
	if idx >= len(s) {
		idx = len(s) - 1
	}
	return int64(s[idx] / time.Microsecond)
}
