package scenario

// Application bindings: each workload declaration binds one of the repo's
// existing applications to a machine and knows how to (a) step it under
// generated load and (b) rebind itself after the group's processes were
// rebuilt by a restore, failover, or migration. Rebinding goes through the
// same arena-rescan entry points the experiments use (RebuildIndex,
// RebuildMemtable) — all application state must live in checkpointed
// memory, which is exactly the paper's claim.

import (
	"encoding/binary"
	"fmt"
	"time"

	"aurora"
	"aurora/internal/apps/memcached"
	"aurora/internal/apps/rocksdb"
	"aurora/internal/filebench"
	"aurora/internal/kern"
	"aurora/internal/vm"
	"aurora/internal/workload"
)

// appBinding is one bound application instance.
type appBinding interface {
	// step applies n generated operations (or one burst, for duration-
	// driven workloads like filebench).
	step(n int64) error
	// rebind reattaches the binding to the group's current processes after
	// a restore/failover/migrate rebuilt them.
	rebind(gs *groupState) error
}

// newGenerator builds the declared generator. Each workload gets its own
// seed, derived from the scenario seed by declaration position, so adding
// a workload never perturbs another's op stream.
func newGenerator(w WorkloadDecl, seed int64) workload.Generator {
	items := int(w.Items)
	if items <= 0 {
		items = 1024
	}
	switch w.Generator {
	case GenPrefixDist:
		per := items / 16
		if per < 1 {
			per = 1
		}
		return workload.NewPrefixDist(seed, 16, per)
	case GenUniform:
		vb := int(w.ValueBytes)
		if vb <= 0 {
			vb = 256
		}
		return workload.NewUniform(seed, items, 0.5, vb)
	default: // GenETC and unset
		return workload.NewETC(seed, items)
	}
}

// ---- counter: the sls demo app, one u64 in process memory ----

// counterRegion mirrors the sls CLI's demo layout: state at the process's
// first mapping.
const counterRegion = 1 << 20

// counterWork is the simulated per-increment application CPU time.
const counterWork = 10 * time.Microsecond

type counterApp struct {
	m *machineState
	p *aurora.Proc
}

func newCounterApp(ms *machineState, group string) (*counterApp, *aurora.Group, error) {
	p := ms.m.Spawn(group)
	if _, err := p.Mmap(counterRegion, aurora.ProtRead|aurora.ProtWrite, false); err != nil {
		return nil, nil, err
	}
	g, err := ms.m.Attach(group, p)
	if err != nil {
		return nil, nil, err
	}
	return &counterApp{m: ms, p: p}, g, nil
}

func (c *counterApp) step(n int64) error {
	var buf [8]byte
	for i := int64(0); i < n; i++ {
		if err := c.p.ReadMem(vm.UserBase, buf[:]); err != nil {
			return err
		}
		binary.LittleEndian.PutUint64(buf[:], binary.LittleEndian.Uint64(buf[:])+1)
		if err := c.p.WriteMem(vm.UserBase, buf[:]); err != nil {
			return err
		}
		c.m.m.Clock.Advance(counterWork)
	}
	return nil
}

func (c *counterApp) rebind(gs *groupState) error {
	c.m = gs.host
	c.p = firstProc(gs)
	if c.p == nil {
		return fmt.Errorf("counter %q: restored group has no processes", gs.decl.Group)
	}
	return nil
}

// ---- memcached under a key-value generator ----

type memcachedApp struct {
	srv   *memcached.Server
	gen   workload.Generator
	arena uint64
	cap   int64
}

func newMemcachedApp(ms *machineState, w WorkloadDecl, seed int64) (*memcachedApp, *aurora.Group, error) {
	items := int(w.Items)
	if items <= 0 {
		items = 1024
	}
	srv, err := memcached.New(ms.m.K, items)
	if err != nil {
		return nil, nil, err
	}
	g, err := ms.m.Attach(w.Group, srv.Proc)
	if err != nil {
		return nil, nil, err
	}
	a := &memcachedApp{srv: srv, gen: newGenerator(w, seed)}
	a.arena, a.cap = srv.Arena()
	return a, g, nil
}

func (a *memcachedApp) step(n int64) error {
	for i := int64(0); i < n; i++ {
		if err := a.srv.Apply(a.gen.Next()); err != nil {
			return err
		}
	}
	return nil
}

func (a *memcachedApp) rebind(gs *groupState) error {
	p := firstProc(gs)
	if p == nil {
		return fmt.Errorf("memcached %q: restored group has no processes", gs.decl.Group)
	}
	srv, err := memcached.RebuildIndex(p, a.arena, a.cap)
	if err != nil {
		return err
	}
	a.srv = srv
	return nil
}

// ---- rocksdb (ConfigAurora: the transparently checkpointed build) ----

type rocksdbApp struct {
	db    *rocksdb.DB
	gen   workload.Generator
	arena uint64
	cap   int64
}

func newRocksDBApp(ms *machineState, w WorkloadDecl, seed int64) (*rocksdbApp, *aurora.Group, error) {
	g, ok := ms.m.SLS.GroupByName(w.Group)
	if !ok {
		g = ms.m.SLS.CreateGroup(w.Group)
	}
	// The memtable is sized so it never rotates within a scenario: rotation
	// compacts via map iteration, which would cost bit-determinism.
	db, err := rocksdb.Open(ms.m.K, rocksdb.Options{
		Config:      rocksdb.ConfigAurora,
		MemtableCap: 64 << 20,
		Group:       g,
	})
	if err != nil {
		return nil, nil, err
	}
	a := &rocksdbApp{db: db, gen: newGenerator(w, seed)}
	a.arena, a.cap = db.MemtableArena()
	return a, g, nil
}

func (a *rocksdbApp) step(n int64) error {
	for i := int64(0); i < n; i++ {
		if err := a.db.Apply(a.gen.Next()); err != nil {
			return err
		}
	}
	return nil
}

func (a *rocksdbApp) rebind(gs *groupState) error {
	p := firstProc(gs)
	if p == nil {
		return fmt.Errorf("rocksdb %q: restored group has no processes", gs.decl.Group)
	}
	db, err := rocksdb.RebuildMemtable(p, a.arena, a.cap)
	if err != nil {
		return err
	}
	a.db = db
	return nil
}

// ---- filebench: duration-driven personalities over the machine's FS ----

type filebenchApp struct {
	m    *machineState
	w    WorkloadDecl
	seed int64
	tick time.Duration
}

func newFilebenchApp(ms *machineState, w WorkloadDecl, seed int64, tick time.Duration) *filebenchApp {
	return &filebenchApp{m: ms, w: w, seed: seed, tick: tick}
}

// step runs one tick-length burst of the personality against the machine's
// live (possibly post-recovery) file system. n is the op budget for
// generator workloads; filebench is duration-driven, so it is ignored.
func (a *filebenchApp) step(n int64) error {
	nfiles := int(a.w.Items)
	if nfiles <= 0 {
		nfiles = 8
	}
	cfg := filebench.Config{
		Clock:    a.m.m.Clock,
		Duration: a.tick,
		IOSize:   4096,
		FileSize: 4 << 20,
		NFiles:   nfiles,
		Seed:     a.seed,
	}
	var err error
	switch a.w.Personality {
	case "fileserver":
		_, err = filebench.FileServer(a.m.m.FS, cfg)
	case "webserver":
		_, err = filebench.WebServer(a.m.m.FS, cfg)
	case "randomwrite":
		_, err = filebench.RandomWrite(a.m.m.FS, cfg)
	case "seqwrite":
		_, err = filebench.SeqWrite(a.m.m.FS, cfg)
	default: // varmail
		_, err = filebench.VarMail(a.m.m.FS, cfg)
	}
	return err
}

// rebind is trivial: the binding tracks the machine, and the machine's FS
// pointer is refreshed by the event handlers after every reboot.
func (a *filebenchApp) rebind(gs *groupState) error {
	a.m = gs.host
	return nil
}

// firstProc returns the restored group's root process.
func firstProc(gs *groupState) *kern.Proc {
	if gs.g == nil {
		return nil
	}
	procs := gs.g.Procs()
	if len(procs) == 0 {
		return nil
	}
	return procs[0]
}
