package scenario

import (
	"encoding/json"
	"fmt"
	"hash/fnv"
	"strings"

	"aurora/internal/telemetry"
)

// Result is the complete, deterministic outcome of one scenario run: what
// fired, what each group accomplished, every machine's forensic flight
// timeline, and the assertion verdicts. Two runs of the same scenario with
// the same seed produce identical Results — Fingerprint() is the hash the
// determinism test and the CI sweep pin.
type Result struct {
	Scenario string `json:"scenario"`
	Seed     int64  `json:"seed"`
	Expect   string `json:"expect"`
	// Passed folds Expect in: a negative (expect: fail) scenario passes
	// when its assertions do NOT all hold.
	Passed bool `json:"passed"`
	// AssertionsOK is the raw verdict before Expect inversion.
	AssertionsOK bool  `json:"assertions_ok"`
	ElapsedNS    int64 `json:"elapsed_ns"`

	Assertions []AssertionResult `json:"assertions"`
	Events     []ExecutedEvent   `json:"events"`
	Groups     []GroupStat       `json:"groups"`
	Flights    []MachineFlight   `json:"flights"`
	// Metrics is the end-of-run fleet telemetry snapshot (scenarios with a
	// telemetry block): per-machine registries in declaration order plus
	// fleet-merged histograms — the artifact the telemetry-golden CI job
	// diffs byte-for-byte across two executions.
	Metrics *telemetry.FleetSnapshot `json:"metrics,omitempty"`
	// SLOBreaches is every objective violation in fire order: the Eval-time
	// breaches (also in each machine's flight ring and slo.breaches
	// counter) plus end-of-run final-at-least verdicts.
	SLOBreaches []SLOBreach `json:"slo_breaches,omitempty"`
	// TimelineJSON is the merged fleet Chrome/Perfetto trace (scenarios
	// with traced machines under a telemetry block). It is an artifact, not
	// part of the JSON result — WriteArtifacts saves it as timeline.json —
	// but it is folded into the fingerprint.
	TimelineJSON string `json:"-"`
	// Errors are runtime failures recorded mid-run (a sync that exhausted
	// retries under a partition, a workload that died with its machine).
	// They are evidence, not verdicts: the assertions judge the run.
	Errors []string `json:"errors,omitempty"`
}

// SLOBreach is one objective violation, attributed to the machine whose
// registry tripped it ("fleet" for the coordinator's).
type SLOBreach struct {
	Machine string `json:"machine"`
	telemetry.Breach
}

// AssertionResult is one end-of-run check's verdict.
type AssertionResult struct {
	Decl   AssertionDecl `json:"decl"`
	Pass   bool          `json:"pass"`
	Detail string        `json:"detail"`
}

// ExecutedEvent is one timeline event as it actually fired.
type ExecutedEvent struct {
	AtMS    int64  `json:"at_ms"`    // scheduled virtual time
	FiredNS int64  `json:"fired_ns"` // actual virtual time it fired
	Kind    string `json:"kind"`
	Target  string `json:"target"`
	Err     string `json:"err,omitempty"`
}

// GroupStat summarizes one workload's run.
type GroupStat struct {
	Group       string `json:"group"`
	Machine     string `json:"machine"` // final host
	Alive       bool   `json:"alive"`
	Ops         int64  `json:"ops"`
	Checkpoints int64  `json:"checkpoints"`
	// WALCommits counts checkpoints that committed as WAL frame appends
	// rather than full epochs (wal_commit workloads).
	WALCommits int64 `json:"wal_commits,omitempty"`
	Restores   int64 `json:"restores"`
	// Rollbacks counts speculative restores that failed validation and
	// fell back to serial.
	Rollbacks int64 `json:"rollbacks,omitempty"`
	P99StopUS int64 `json:"p99_stop_us"`
	// P99DurableUS is the p99 of per-checkpoint durable windows — the
	// virtual span from checkpoint start to the commit landing on media.
	P99DurableUS int64 `json:"p99_durable_us,omitempty"`
	StandbyEpoch int64 `json:"standby_epoch,omitempty"`
	Syncs        int64 `json:"syncs,omitempty"`
}

// MachineFlight is one machine's combined forensic timeline (persisted
// pre-crash ring + fault-device crash log + live post-boot ring, merged by
// virtual time), pre-rendered as text.
type MachineFlight struct {
	Machine  string `json:"machine"`
	Timeline string `json:"timeline"`
}

// Fingerprint hashes everything observable about the run — assertion
// verdicts, the executed event log, group statistics, flight timelines,
// and recorded errors — into a short hex string. Equal fingerprints mean
// bit-identical runs.
func (r *Result) Fingerprint() string {
	h := fnv.New64a()
	w := func(format string, args ...any) { fmt.Fprintf(h, format, args...) }
	w("scenario=%s seed=%d expect=%s elapsed=%d\n", r.Scenario, r.Seed, r.Expect, r.ElapsedNS)
	for _, a := range r.Assertions {
		w("assert %s m=%s g=%s ev=%s metric=%s min=%d maxus=%d max=%d pass=%v detail=%s\n",
			a.Decl.Kind, a.Decl.Machine, a.Decl.Group, a.Decl.Event, a.Decl.Metric, a.Decl.Min, a.Decl.MaxUS, a.Decl.Max, a.Pass, a.Detail)
	}
	for _, e := range r.Events {
		w("event %d %d %s %s err=%s\n", e.AtMS, e.FiredNS, e.Kind, e.Target, e.Err)
	}
	for _, g := range r.Groups {
		w("group %s on=%s alive=%v ops=%d ckpts=%d wal=%d restores=%d rollbacks=%d p99=%d durable=%d epoch=%d syncs=%d\n",
			g.Group, g.Machine, g.Alive, g.Ops, g.Checkpoints, g.WALCommits, g.Restores, g.Rollbacks, g.P99StopUS, g.P99DurableUS, g.StandbyEpoch, g.Syncs)
	}
	for _, f := range r.Flights {
		w("flight %s\n%s", f.Machine, f.Timeline)
	}
	for _, e := range r.Errors {
		w("error %s\n", e)
	}
	for _, b := range r.SLOBreaches {
		w("breach %s %s\n", b.Machine, b.Breach)
	}
	if r.Metrics != nil {
		// The whole snapshot, bytes and all: equal fingerprints must mean
		// the metrics artifact diffs clean too.
		if blob, err := json.Marshal(r.Metrics); err == nil {
			h.Write(blob)
		}
	}
	fmt.Fprint(h, r.TimelineJSON)
	return fmt.Sprintf("%016x", h.Sum64())
}

// countFlightKind counts timeline lines naming the given flight event kind
// (the Kind.String() name, e.g. "power.cut").
func countFlightKind(timeline, kind string) int64 {
	var n int64
	for _, line := range strings.Split(timeline, "\n") {
		fields := strings.Fields(line)
		if len(fields) >= 2 && fields[1] == kind {
			n++
		}
	}
	return n
}

// Summary renders a human-readable report.
func (r *Result) Summary() string {
	var sb strings.Builder
	verdict := "PASS"
	if !r.Passed {
		verdict = "FAIL"
	}
	fmt.Fprintf(&sb, "scenario %s: %s (seed %d, %v virtual", r.Scenario, verdict, r.Seed, nsDur(r.ElapsedNS))
	if r.Expect == ExpectFail {
		fmt.Fprintf(&sb, ", negative: assertions expected to trip")
	}
	fmt.Fprintf(&sb, ")\n")
	for _, e := range r.Events {
		status := "ok"
		if e.Err != "" {
			status = e.Err
		}
		fmt.Fprintf(&sb, "  event t=%-6dms %-11s %-24s %s\n", e.AtMS, e.Kind, e.Target, status)
	}
	for _, g := range r.Groups {
		fmt.Fprintf(&sb, "  group %-12s on %-8s alive=%-5v ops=%-8d ckpts=%-4d restores=%d",
			g.Group, g.Machine, g.Alive, g.Ops, g.Checkpoints, g.Restores)
		if g.P99StopUS > 0 {
			fmt.Fprintf(&sb, " p99stop=%dus", g.P99StopUS)
		}
		if g.WALCommits > 0 {
			fmt.Fprintf(&sb, " wal=%d p99durable=%dus", g.WALCommits, g.P99DurableUS)
		}
		if g.Syncs > 0 {
			fmt.Fprintf(&sb, " syncs=%d standby@%d", g.Syncs, g.StandbyEpoch)
		}
		sb.WriteByte('\n')
	}
	for _, a := range r.Assertions {
		mark := "ok  "
		if !a.Pass {
			mark = "FAIL"
		}
		target := a.Decl.Machine
		if a.Decl.Group != "" {
			target = a.Decl.Group
		}
		fmt.Fprintf(&sb, "  assert %s %-20s %-12s %s\n", mark, a.Decl.Kind, target, a.Detail)
	}
	for _, b := range r.SLOBreaches {
		fmt.Fprintf(&sb, "  breach %s: %s\n", b.Machine, b.Breach)
	}
	for _, e := range r.Errors {
		fmt.Fprintf(&sb, "  note: %s\n", e)
	}
	fmt.Fprintf(&sb, "  fingerprint %s\n", r.Fingerprint())
	return sb.String()
}

func nsDur(ns int64) string {
	switch {
	case ns >= 1e9:
		return fmt.Sprintf("%.2fs", float64(ns)/1e9)
	case ns >= 1e6:
		return fmt.Sprintf("%.1fms", float64(ns)/1e6)
	default:
		return fmt.Sprintf("%dns", ns)
	}
}
