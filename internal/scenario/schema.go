// Package scenario is Aurora's declarative chaos engine: a scenario is a
// data file — YAML or JSON — declaring a fleet of machines, a workload mix
// drawn from the existing generators (Facebook ETC memcached, Prefix_dist
// RocksDB, filebench, the counter demo), timed fault events on the shared
// virtual clock (power cuts, replication-link partitions, bit-rot, live
// migration, failover), and assertions over the outcome (audit clean,
// standby caught up, flight timeline contains the cut, p99 stop time under
// a bound). The runner plugs into the machinery the repo already has —
// internal/faultdev, internal/net, internal/audit, internal/flight,
// internal/trace — rather than duplicating it, so "as many scenarios as
// you can imagine" becomes a corpus of files CI sweeps on every PR instead
// of bespoke Go harness code.
//
// Determinism contract: a scenario plus a seed replays bit-identically.
// Every machine shares one virtual clock; every generator, fault plan, and
// wire plan is seeded from the scenario seed by declaration position; the
// runner iterates declarations in order and never ranges over a map. Two
// runs with the same seed produce identical assertion results, event logs,
// and flight timelines — Result.Fingerprint() is the proof the CI sweep
// and the determinism test both pin.
package scenario

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"aurora/internal/placement"
)

// Expectation values for Scenario.Expect.
const (
	ExpectPass = "pass"
	ExpectFail = "fail" // a negative scenario: the run must violate assertions
)

// Scenario is one declared chaos experiment.
type Scenario struct {
	Name        string `json:"name"`
	Description string `json:"description,omitempty"`
	// Seed is the default PRNG seed; `sls scenario run -seed` overrides.
	Seed int64 `json:"seed,omitempty"`
	// DurationMS is the virtual runtime. TickMS is the scheduling quantum
	// (default 1): workloads step and cadences fire once per tick.
	DurationMS int64 `json:"duration_ms"`
	TickMS     int64 `json:"tick_ms,omitempty"`
	// Expect is "pass" (default) or "fail" for negative scenarios that
	// prove assertions can trip.
	Expect string `json:"expect,omitempty"`

	Machines     []MachineDecl   `json:"machines"`
	Workloads    []WorkloadDecl  `json:"workloads,omitempty"`
	Replications []ReplDecl      `json:"replications,omitempty"`
	Placement    *PlacementDecl  `json:"placement,omitempty"`
	Telemetry    *TelemetryDecl  `json:"telemetry,omitempty"`
	Events       []EventDecl     `json:"events,omitempty"`
	Assertions   []AssertionDecl `json:"assertions"`
}

// TelemetryDecl turns on the metrics plane (internal/telemetry): every
// machine gets a typed registry the SLS hooks feed, the runner samples
// them into time-series on the declared cadence, and the declared SLO
// rules are evaluated each sample — a fired breach lands in the flight
// recorder (slo.breach), the slo.breaches counter, and the result. The
// run's artifacts gain a deterministic fleet metrics snapshot
// (metrics.json) and, when machines are traced, one merged fleet
// timeline (timeline.json) with cross-machine flow arrows.
type TelemetryDecl struct {
	SampleEveryMS int64     `json:"sample_every_ms,omitempty"` // sampler cadence (default 5)
	SLOs          []SLODecl `json:"slos,omitempty"`
}

// EffectiveSampleEvery resolves the sampler cadence or its default.
func (t *TelemetryDecl) EffectiveSampleEvery() int64 {
	if t.SampleEveryMS > 0 {
		return t.SampleEveryMS
	}
	return 5
}

// SLO rule kinds, mirroring telemetry.SLOKind.
const (
	SLOP99Under     = "p99-under"      // histogram p99 must stay under bound
	SLOMaxUnder     = "max-under"      // series max must stay under bound
	SLOFinalAtLeast = "final-at-least" // series last value must reach bound
)

var sloKinds = []string{SLOP99Under, SLOMaxUnder, SLOFinalAtLeast}

// SLODecl is one declarative objective over a registry metric, evaluated
// per machine on the sampler cadence (final-at-least only at end of run).
// Bound units match the metric's units — nanoseconds for the .ns latency
// histograms the SLS hooks export.
type SLODecl struct {
	Name   string `json:"name"`
	Metric string `json:"metric"`
	Kind   string `json:"kind"`
	Bound  int64  `json:"bound"`
}

// PlacementDecl turns on the fleet coordinator (internal/placement): every
// group workload is managed — the coordinator picks and seeds its standby,
// syncs it on a cadence, discovers machine death via heartbeats, fails
// groups over, and (when rebalance_every_ms is set) sheds hot groups via
// live migration. A placement scenario declares no `replications` block
// (the coordinator owns standbys) and kills machines with `machine-dies`
// rather than `power-cut` (dead machines stay dead; the coordinator must
// notice on its own). Migrate events route through the coordinator and use
// migrate_rounds, keeping its view of placement authoritative.
type PlacementDecl struct {
	SyncEveryMS      int64   `json:"sync_every_ms,omitempty"`      // default 10
	HeartbeatEveryMS int64   `json:"heartbeat_every_ms,omitempty"` // default 5
	DeadAfterMisses  int64   `json:"dead_after_misses,omitempty"`  // default 3
	AuditEveryMS     int64   `json:"audit_every_ms,omitempty"`     // watchdog audits; 0 disables
	RebalanceEveryMS int64   `json:"rebalance_every_ms,omitempty"` // hot-group scan; 0 disables
	HotFactor        float64 `json:"hot_factor,omitempty"`         // default 2.0
	MigrateRounds    int64   `json:"migrate_rounds,omitempty"`     // default 2
	// HeartbeatDrop makes every heartbeat wire lossy: the detector must
	// distinguish a lossy link from a dead machine.
	HeartbeatDrop float64 `json:"heartbeat_drop,omitempty"`
}

// EffectiveConfig resolves the declared knobs into the coordinator config
// the runner builds — unset cadences get the runner defaults, everything
// else gets placement's own. The runner layers HeartbeatPlan (which needs
// the run seed) on top; validate prints from this so the reported
// effective values cannot drift from what a run uses.
func (p *PlacementDecl) EffectiveConfig() placement.Config {
	ms := func(v, def int64) time.Duration {
		if v <= 0 {
			v = def
		}
		return time.Duration(v) * time.Millisecond
	}
	return placement.Config{
		SyncEvery:       ms(p.SyncEveryMS, 10),
		HeartbeatEvery:  ms(p.HeartbeatEveryMS, 5),
		DeadAfterMisses: int(p.DeadAfterMisses),
		AuditEvery:      time.Duration(p.AuditEveryMS) * time.Millisecond,
		RebalanceEvery:  time.Duration(p.RebalanceEveryMS) * time.Millisecond,
		HotFactor:       p.HotFactor,
		MigrateRounds:   int(p.MigrateRounds),
	}.Filled()
}

// MachineDecl sizes one fleet member. Every scenario machine carries a
// fault device (internal/faultdev) so events can kill or rot it.
type MachineDecl struct {
	Name      string `json:"name"`
	StorageMB int64  `json:"storage_mb,omitempty"` // default 256
	Trace     bool   `json:"trace,omitempty"`
}

// Workload app kinds.
const (
	AppCounter   = "counter"   // the sls demo app: one u64 in process memory
	AppMemcached = "memcached" // internal/apps/memcached under a workload generator
	AppRocksDB   = "rocksdb"   // internal/apps/rocksdb (ConfigAurora) under a generator
	AppFilebench = "filebench" // internal/filebench personalities over the machine's FS
)

// Workload generator kinds (for memcached / rocksdb).
const (
	GenETC        = "etc"         // Facebook ETC (Mutilate), the paper's memcached driver
	GenPrefixDist = "prefix_dist" // Facebook Prefix_dist, the paper's RocksDB driver
	GenUniform    = "uniform"
)

// Filebench personalities accepted in WorkloadDecl.Personality.
var filebenchPersonalities = []string{"varmail", "fileserver", "webserver", "randomwrite", "seqwrite"}

// WorkloadDecl binds an application to a machine and drives it every tick.
type WorkloadDecl struct {
	Machine string `json:"machine"`
	// Group is the consistency group name; empty only for filebench,
	// whose state lives in the file system rather than process memory.
	Group string `json:"group,omitempty"`
	App   string `json:"app"`
	// Generator/Items/ValueBytes shape the key-value op stream.
	Generator  string `json:"generator,omitempty"`
	Items      int64  `json:"items,omitempty"`       // key space / slot count (default 1024)
	ValueBytes int64  `json:"value_bytes,omitempty"` // uniform generator value size
	OpsPerTick int64  `json:"ops_per_tick,omitempty"`
	// Personality selects the filebench workload (default varmail).
	Personality string `json:"personality,omitempty"`
	// CheckpointEveryMS is the periodic checkpoint cadence; 0 means only
	// explicit checkpoint events persist this workload.
	CheckpointEveryMS int64 `json:"checkpoint_every_ms,omitempty"`
	// WALCommit makes periodic and explicit checkpoints of this group
	// WAL-first (CkptWAL): deltas append to the store's log region and the
	// epoch only advances on a fold. FoldEvery promotes every Nth WAL
	// commit to a full checkpoint so the log region is reclaimed; 0 means
	// the group folds only when the WAL region fills.
	WALCommit bool  `json:"wal_commit,omitempty"`
	FoldEvery int64 `json:"fold_every,omitempty"`
}

// ReplDecl keeps a warm standby of a group on another machine, syncing on
// a cadence over a simulated lossy wire.
type ReplDecl struct {
	Group       string  `json:"group"`
	From        string  `json:"from"`
	To          string  `json:"to"`
	SyncEveryMS int64   `json:"sync_every_ms,omitempty"` // 0: only explicit sync events
	Drop        float64 `json:"drop,omitempty"`
	Dup         float64 `json:"dup,omitempty"`
	Reorder     float64 `json:"reorder,omitempty"`
	Corrupt     float64 `json:"corrupt,omitempty"`
}

// Event kinds.
const (
	EvPowerCut   = "power-cut"  // machine: kill + reboot through faultdev
	EvRestore    = "restore"    // machine+group: restore and rebind the app
	EvPartition  = "partition"  // group: cut the replication wire for for_ms
	EvBitRot     = "bit-rot"    // machine: rot the Nth live data pages
	EvMigrate    = "migrate"    // group→to: live pre-copy migration
	EvFailover   = "failover"   // group: restore on the standby
	EvCheckpoint = "checkpoint" // group (or whole machine store)
	EvSync       = "sync"       // group: one replication sync now
	// Placement-mode kinds.
	EvMachineDies = "machine-dies" // machine: permanent death the coordinator must discover
	EvRebalance   = "rebalance"    // fleet: force a hot-group rebalance scan now
)

var eventKinds = []string{EvPowerCut, EvRestore, EvPartition, EvBitRot, EvMigrate, EvFailover, EvCheckpoint, EvSync, EvMachineDies, EvRebalance}

// EventDecl is one timed event on the shared virtual clock.
// Runner fallback defaults, hoisted to the schema layer so `scenario
// validate` reports the effective values and the runner has one source of
// truth instead of inline magic numbers.
const (
	// DefaultOpsPerTick drives workloads that leave ops_per_tick unset.
	DefaultOpsPerTick int64 = 20
	// DefaultMigrateRounds is the pre-copy round count when a migrate
	// event (or placement rebalance) leaves rounds unset.
	DefaultMigrateRounds int64 = 2
)

// EffectiveOpsPerTick resolves the declared per-tick op rate or the schema
// default.
func (w *WorkloadDecl) EffectiveOpsPerTick() int64 {
	if w.OpsPerTick > 0 {
		return w.OpsPerTick
	}
	return DefaultOpsPerTick
}

type EventDecl struct {
	AtMS int64  `json:"at_ms"`
	Kind string `json:"kind"`

	Machine string `json:"machine,omitempty"`
	Group   string `json:"group,omitempty"`

	// power-cut knobs (see faultdev.Plan).
	Torn         bool `json:"torn,omitempty"`
	DropInFlight bool `json:"drop_in_flight,omitempty"`

	// partition duration.
	ForMS int64 `json:"for_ms,omitempty"`

	// bit-rot targets: indexes into the machine's live committed pages
	// (resolved via Store.LivePageAddrs, modulo the live count).
	Pages []int64 `json:"pages,omitempty"`

	// migrate destination and pre-copy rounds.
	To     string `json:"to,omitempty"`
	Rounds int64  `json:"rounds,omitempty"`

	// restore mode: "serial" (eager, the default), "lazy", or
	// "speculative" — the validated-speculation path, where the group
	// executes immediately and a background validator confirms every
	// page, rolling back to a serial restore on mismatch.
	RestoreMode string `json:"restore_mode,omitempty"`
}

// EffectiveRounds resolves a migrate event's declared pre-copy rounds or
// the schema default.
func (e *EventDecl) EffectiveRounds() int64 {
	if e.Rounds > 0 {
		return e.Rounds
	}
	return DefaultMigrateRounds
}

// Assertion kinds.
const (
	AssertAuditClean      = "audit-clean"          // machine: invariant watchdog finds nothing
	AssertFsckClean       = "fsck-clean"           // machine: store verifies
	AssertFsckProblems    = "fsck-problems"        // machine: fsck finds >= min problems (bit-rot proof)
	AssertFlightContains  = "flight-contains"      // machine: recovered timeline has >= min events of kind
	AssertStandbyMinEpoch = "standby-min-epoch"    // group: standby holds epoch >= min
	AssertSyncsAtLeast    = "syncs-at-least"       // group: replication landed >= min ships
	AssertOpsAtLeast      = "ops-at-least"         // group: workload completed >= min ops
	AssertCkptsAtLeast    = "checkpoints-at-least" // group: >= min checkpoints committed
	AssertGroupOn         = "group-on"             // machine+group: group is live there
	AssertP99StopUnderUS  = "p99-stop-under-us"    // group: p99 checkpoint stop time <= max µs
	AssertRestoreUnderUS  = "restores-under-us"    // group: every restore time <= max µs
	// group: p99 durable window (checkpoint start to frame durable) <= max
	// µs — the proof WAL-first commit keeps the loss window tiny.
	AssertDurableWindowUnderUS = "durable-window-under-us"
	// fleet (placement mode): no group orphaned and every surviving group
	// has a live standby — the invariant a machine kill must not break.
	AssertFleetHealth = "fleet-health"
	// fleet (placement mode): the coordinator performed >= min failovers.
	AssertFailoversAtLeast = "failovers-at-least"
	// group: speculation rollbacks across the run <= max (default 0 — a
	// clean image must validate without ever falling back to serial).
	AssertRollbacksAtMost = "rollbacks-at-most"
	// Metric assertions (need a telemetry block). Each reads a named
	// registry metric — from one machine when `machine` is set, else
	// fleet-wide (histograms merge exactly; series reduce across members).
	AssertMetricMaxUnder     = "metric-max-under"      // series max < max
	AssertMetricP99Under     = "metric-p99-under"      // histogram p99 < max
	AssertMetricFinalAtLeast = "metric-final-at-least" // series last >= min
)

var assertionKinds = []string{
	AssertAuditClean, AssertFsckClean, AssertFsckProblems, AssertFlightContains,
	AssertStandbyMinEpoch, AssertSyncsAtLeast, AssertOpsAtLeast, AssertCkptsAtLeast,
	AssertGroupOn, AssertP99StopUnderUS, AssertRestoreUnderUS,
	AssertDurableWindowUnderUS, AssertFleetHealth, AssertFailoversAtLeast,
	AssertRollbacksAtMost, AssertMetricMaxUnder, AssertMetricP99Under,
	AssertMetricFinalAtLeast,
}

// AssertionDecl is one end-of-run check.
type AssertionDecl struct {
	Kind    string `json:"kind"`
	Machine string `json:"machine,omitempty"`
	Group   string `json:"group,omitempty"`
	Event   string `json:"event,omitempty"` // flight-contains: flight kind name, e.g. "power.cut"
	Min     int64  `json:"min,omitempty"`   // thresholds (counts, epochs); default 1
	MaxUS   int64  `json:"max_us,omitempty"`
	// Max is the at-most bound (rollbacks-at-most, metric-*-under); unlike
	// Min it does not default — 0 means none allowed.
	Max int64 `json:"max,omitempty"`
	// Metric names the registry metric a metric-* assertion reads, e.g.
	// "sls.stop.ns" or "fleet.failover.ns".
	Metric string `json:"metric,omitempty"`
}

// Parse decodes a scenario from YAML (or JSON — valid JSON is a YAML
// subset only for the flow forms this parser rejects, so JSON sources go
// through ParseJSON in file.go) and validates it.
func Parse(src []byte) (*Scenario, error) {
	raw, err := ParseYAML(src)
	if err != nil {
		return nil, err
	}
	return Decode(raw)
}

// Decode builds a Scenario from generic parsed values, rejecting unknown
// fields and wrong types with positioned paths, then validates it.
func Decode(raw map[string]any) (*Scenario, error) {
	d := &decoder{}
	sc := d.scenario(raw)
	if d.err != nil {
		return nil, d.err
	}
	if err := sc.Validate(); err != nil {
		return nil, err
	}
	return sc, nil
}

// Validate checks cross-references and ranges. Parse/Decode call it; the
// CLI's `scenario validate` is this over a whole corpus.
func (s *Scenario) Validate() error {
	var errs []string
	bad := func(format string, args ...any) {
		errs = append(errs, fmt.Sprintf(format, args...))
	}

	if s.Name == "" {
		bad("name: required")
	}
	if s.DurationMS <= 0 {
		bad("duration_ms: must be positive, got %d", s.DurationMS)
	}
	if s.TickMS < 0 {
		bad("tick_ms: must not be negative, got %d", s.TickMS)
	}
	if s.Expect != "" && s.Expect != ExpectPass && s.Expect != ExpectFail {
		bad("expect: must be %q or %q, got %q", ExpectPass, ExpectFail, s.Expect)
	}
	if len(s.Machines) == 0 {
		bad("machines: at least one machine is required")
	}
	machines := map[string]bool{}
	for i, m := range s.Machines {
		if m.Name == "" {
			bad("machines[%d].name: required", i)
		}
		if machines[m.Name] {
			bad("machines[%d]: duplicate machine %q", i, m.Name)
		}
		machines[m.Name] = true
		if m.StorageMB < 0 {
			bad("machines[%d].storage_mb: must not be negative", i)
		}
	}

	groups := map[string]string{} // group -> machine
	for i, w := range s.Workloads {
		at := fmt.Sprintf("workloads[%d]", i)
		if !machines[w.Machine] {
			bad("%s.machine: no machine %q", at, w.Machine)
		}
		switch w.App {
		case AppCounter, AppMemcached, AppRocksDB:
			if w.Group == "" {
				bad("%s.group: required for app %q", at, w.App)
			}
		case AppFilebench:
			if w.Group != "" {
				bad("%s.group: filebench state lives in the file system; omit group", at)
			}
			if w.Personality != "" && !contains(filebenchPersonalities, w.Personality) {
				bad("%s.personality: unknown %q (want one of %s)", at, w.Personality, strings.Join(filebenchPersonalities, ", "))
			}
		case "":
			bad("%s.app: required", at)
		default:
			bad("%s.app: unknown app %q", at, w.App)
		}
		if w.Group != "" {
			if _, dup := groups[w.Group]; dup {
				bad("%s.group: duplicate group %q", at, w.Group)
			}
			groups[w.Group] = w.Machine
		}
		switch w.Generator {
		case "", GenETC, GenPrefixDist, GenUniform:
		default:
			bad("%s.generator: unknown generator %q", at, w.Generator)
		}
		if w.Items < 0 || w.OpsPerTick < 0 || w.ValueBytes < 0 || w.CheckpointEveryMS < 0 {
			bad("%s: sizes and cadences must not be negative", at)
		}
		if w.FoldEvery < 0 {
			bad("%s.fold_every: must not be negative, got %d", at, w.FoldEvery)
		}
		if (w.WALCommit || w.FoldEvery > 0) && w.Group == "" {
			bad("%s: wal_commit/fold_every need a consistency group", at)
		}
		if w.FoldEvery > 0 && !w.WALCommit {
			bad("%s.fold_every: only meaningful with wal_commit", at)
		}
	}

	if p := s.Placement; p != nil {
		if len(s.Machines) < 2 {
			bad("placement: needs at least two machines (a standby must live somewhere else)")
		}
		if len(s.Replications) > 0 {
			bad("placement: declares standbys itself; remove the replications block")
		}
		if p.SyncEveryMS < 0 || p.HeartbeatEveryMS < 0 || p.DeadAfterMisses < 0 ||
			p.AuditEveryMS < 0 || p.RebalanceEveryMS < 0 || p.MigrateRounds < 0 {
			bad("placement: cadences and counts must not be negative")
		}
		if p.HotFactor < 0 {
			bad("placement.hot_factor: must not be negative, got %g", p.HotFactor)
		}
		if p.HeartbeatDrop < 0 || p.HeartbeatDrop >= 1 {
			bad("placement.heartbeat_drop: probability must be in [0,1), got %g", p.HeartbeatDrop)
		}
	}

	if t := s.Telemetry; t != nil {
		if t.SampleEveryMS < 0 {
			bad("telemetry.sample_every_ms: must not be negative, got %d", t.SampleEveryMS)
		}
		sloNames := map[string]bool{}
		for i, r := range t.SLOs {
			at := fmt.Sprintf("telemetry.slos[%d]", i)
			if r.Name == "" {
				bad("%s.name: required", at)
			}
			if sloNames[r.Name] {
				bad("%s: duplicate slo %q", at, r.Name)
			}
			sloNames[r.Name] = true
			if r.Metric == "" {
				bad("%s.metric: required", at)
			}
			if !contains(sloKinds, r.Kind) {
				bad("%s.kind: unknown slo kind %q (want one of %s)", at, r.Kind, strings.Join(sloKinds, ", "))
			}
			if r.Bound <= 0 {
				bad("%s.bound: needs a positive bound", at)
			}
		}
	}

	repls := map[string]bool{}
	for i, r := range s.Replications {
		at := fmt.Sprintf("replications[%d]", i)
		if _, ok := groups[r.Group]; !ok {
			bad("%s.group: no workload declares group %q", at, r.Group)
		}
		if !machines[r.From] {
			bad("%s.from: no machine %q", at, r.From)
		}
		if !machines[r.To] {
			bad("%s.to: no machine %q", at, r.To)
		}
		if r.From != "" && r.From == r.To {
			bad("%s: from and to are both %q", at, r.From)
		}
		if gm, ok := groups[r.Group]; ok && gm != r.From {
			bad("%s: group %q runs on %q, not on from=%q", at, r.Group, gm, r.From)
		}
		if repls[r.Group] {
			bad("%s: duplicate replication of group %q", at, r.Group)
		}
		repls[r.Group] = true
		for _, p := range []struct {
			name string
			v    float64
		}{{"drop", r.Drop}, {"dup", r.Dup}, {"reorder", r.Reorder}, {"corrupt", r.Corrupt}} {
			if p.v < 0 || p.v >= 1 {
				bad("%s.%s: probability must be in [0,1), got %g", at, p.name, p.v)
			}
		}
		if r.SyncEveryMS < 0 {
			bad("%s.sync_every_ms: must not be negative", at)
		}
	}

	for i, e := range s.Events {
		at := fmt.Sprintf("events[%d]", i)
		if e.AtMS < 0 {
			bad("%s.at_ms: must not be negative, got %d", at, e.AtMS)
		}
		if e.AtMS > s.DurationMS {
			bad("%s.at_ms: %d is after the scenario ends (%d)", at, e.AtMS, s.DurationMS)
		}
		if e.RestoreMode != "" && e.Kind != EvRestore {
			bad("%s.restore_mode: only %q events take a restore mode", at, EvRestore)
		}
		switch e.Kind {
		case EvPowerCut:
			if !machines[e.Machine] {
				bad("%s.machine: no machine %q", at, e.Machine)
			}
			if s.Placement != nil {
				bad("%s: power-cut bypasses the coordinator; placement scenarios kill machines with %q", at, EvMachineDies)
			}
		case EvRestore:
			if !machines[e.Machine] {
				bad("%s.machine: no machine %q", at, e.Machine)
			}
			if _, ok := groups[e.Group]; !ok {
				bad("%s.group: no workload declares group %q", at, e.Group)
			}
			if s.Placement != nil {
				bad("%s: placement scenarios recover through coordinator failover, not explicit restore", at)
			}
			switch e.RestoreMode {
			case "", "serial", "lazy", "speculative":
			default:
				bad("%s.restore_mode: unknown mode %q (want serial, lazy, or speculative)", at, e.RestoreMode)
			}
		case EvPartition:
			if !repls[e.Group] {
				bad("%s.group: no replication declared for group %q", at, e.Group)
			}
			if e.ForMS <= 0 {
				bad("%s.for_ms: partition needs a positive duration", at)
			}
		case EvBitRot:
			if !machines[e.Machine] {
				bad("%s.machine: no machine %q", at, e.Machine)
			}
			if len(e.Pages) == 0 {
				bad("%s.pages: bit-rot needs at least one live-page index", at)
			}
			for _, pg := range e.Pages {
				if pg < 0 {
					bad("%s.pages: negative page index %d", at, pg)
				}
			}
		case EvMigrate:
			if _, ok := groups[e.Group]; !ok {
				bad("%s.group: no workload declares group %q", at, e.Group)
			}
			if !machines[e.To] {
				bad("%s.to: no machine %q", at, e.To)
			}
			if e.Rounds < 0 {
				bad("%s.rounds: must not be negative", at)
			}
		case EvFailover:
			if !repls[e.Group] {
				bad("%s.group: no replication declared for group %q", at, e.Group)
			}
		case EvCheckpoint:
			if e.Group == "" && !machines[e.Machine] {
				bad("%s: checkpoint needs a group or a machine", at)
			}
			if e.Group != "" {
				if _, ok := groups[e.Group]; !ok {
					bad("%s.group: no workload declares group %q", at, e.Group)
				}
			}
		case EvSync:
			if !repls[e.Group] {
				bad("%s.group: no replication declared for group %q", at, e.Group)
			}
		case EvMachineDies:
			if s.Placement == nil {
				bad("%s: machine-dies needs a placement block (the coordinator discovers the death)", at)
			}
			if !machines[e.Machine] {
				bad("%s.machine: no machine %q", at, e.Machine)
			}
		case EvRebalance:
			if s.Placement == nil {
				bad("%s: rebalance needs a placement block", at)
			}
		case "":
			bad("%s.kind: required", at)
		default:
			bad("%s.kind: unknown event kind %q (want one of %s)", at, e.Kind, strings.Join(eventKinds, ", "))
		}
	}

	if len(s.Assertions) == 0 {
		bad("assertions: at least one assertion is required")
	}
	for i, a := range s.Assertions {
		at := fmt.Sprintf("assertions[%d]", i)
		needMachine := func() {
			if !machines[a.Machine] {
				bad("%s.machine: no machine %q", at, a.Machine)
			}
		}
		needGroup := func() {
			if _, ok := groups[a.Group]; !ok {
				bad("%s.group: no workload declares group %q", at, a.Group)
			}
		}
		switch a.Kind {
		case AssertAuditClean, AssertFsckClean:
			needMachine()
		case AssertFsckProblems:
			needMachine()
		case AssertFlightContains:
			needMachine()
			if a.Event == "" {
				bad("%s.event: flight-contains needs a flight event kind (e.g. \"power.cut\")", at)
			}
		case AssertStandbyMinEpoch, AssertSyncsAtLeast:
			if !repls[a.Group] {
				bad("%s.group: no replication declared for group %q", at, a.Group)
			}
		case AssertOpsAtLeast, AssertCkptsAtLeast:
			needGroup()
		case AssertGroupOn:
			needMachine()
			needGroup()
		case AssertP99StopUnderUS, AssertRestoreUnderUS, AssertDurableWindowUnderUS:
			needGroup()
			if a.MaxUS <= 0 {
				bad("%s.max_us: needs a positive bound", at)
			}
		case AssertRollbacksAtMost:
			needGroup()
			if a.Max < 0 {
				bad("%s.max: must not be negative", at)
			}
		case AssertFleetHealth, AssertFailoversAtLeast:
			if s.Placement == nil {
				bad("%s: %s needs a placement block", at, a.Kind)
			}
		case AssertMetricMaxUnder, AssertMetricP99Under, AssertMetricFinalAtLeast:
			if s.Telemetry == nil {
				bad("%s: %s needs a telemetry block", at, a.Kind)
			}
			if a.Metric == "" {
				bad("%s.metric: required", at)
			}
			if a.Machine != "" && !machines[a.Machine] {
				bad("%s.machine: no machine %q", at, a.Machine)
			}
			if a.Kind != AssertMetricFinalAtLeast && a.Max <= 0 {
				bad("%s.max: needs a positive bound", at)
			}
		case "":
			bad("%s.kind: required", at)
		default:
			bad("%s.kind: unknown assertion kind %q (want one of %s)", at, a.Kind, strings.Join(assertionKinds, ", "))
		}
		if a.Min < 0 {
			bad("%s.min: must not be negative", at)
		}
	}

	if len(errs) == 0 {
		return nil
	}
	sort.Strings(errs)
	return fmt.Errorf("scenario %q invalid:\n  %s", s.Name, strings.Join(errs, "\n  "))
}

func contains(list []string, s string) bool {
	for _, v := range list {
		if v == s {
			return true
		}
	}
	return false
}

// ---- strict generic-value decoding ----

type decoder struct{ err error }

func (d *decoder) fail(path, format string, args ...any) {
	if d.err == nil {
		d.err = fmt.Errorf("%s: %s", path, fmt.Sprintf(format, args...))
	}
}

// field extractors: each consumes its key so unknown-key detection is a
// final "anything left?" check per object.

func (d *decoder) str(m map[string]any, path, key string) string {
	v, ok := m[key]
	if !ok {
		return ""
	}
	delete(m, key)
	s, ok := v.(string)
	if !ok {
		d.fail(path+"."+key, "want string, got %s", typeName(v))
		return ""
	}
	return s
}

func (d *decoder) i64(m map[string]any, path, key string) int64 {
	v, ok := m[key]
	if !ok {
		return 0
	}
	delete(m, key)
	switch n := v.(type) {
	case int64:
		return n
	case float64:
		if n == float64(int64(n)) {
			return int64(n)
		}
	}
	d.fail(path+"."+key, "want integer, got %s", typeName(v))
	return 0
}

func (d *decoder) f64(m map[string]any, path, key string) float64 {
	v, ok := m[key]
	if !ok {
		return 0
	}
	delete(m, key)
	switch n := v.(type) {
	case int64:
		return float64(n)
	case float64:
		return n
	}
	d.fail(path+"."+key, "want number, got %s", typeName(v))
	return 0
}

func (d *decoder) boolean(m map[string]any, path, key string) bool {
	v, ok := m[key]
	if !ok {
		return false
	}
	delete(m, key)
	b, ok := v.(bool)
	if !ok {
		d.fail(path+"."+key, "want bool, got %s", typeName(v))
		return false
	}
	return b
}

func (d *decoder) i64list(m map[string]any, path, key string) []int64 {
	v, ok := m[key]
	if !ok {
		return nil
	}
	delete(m, key)
	list, ok := v.([]any)
	if !ok {
		d.fail(path+"."+key, "want list of integers, got %s", typeName(v))
		return nil
	}
	out := make([]int64, 0, len(list))
	for i, e := range list {
		switch n := e.(type) {
		case int64:
			out = append(out, n)
		case float64:
			if n == float64(int64(n)) {
				out = append(out, int64(n))
				continue
			}
			d.fail(fmt.Sprintf("%s.%s[%d]", path, key, i), "want integer, got %g", n)
		default:
			d.fail(fmt.Sprintf("%s.%s[%d]", path, key, i), "want integer, got %s", typeName(e))
		}
	}
	return out
}

// objects pulls a list of maps.
func (d *decoder) objects(m map[string]any, path, key string) []map[string]any {
	v, ok := m[key]
	if !ok {
		return nil
	}
	delete(m, key)
	list, ok := v.([]any)
	if !ok {
		d.fail(path+"."+key, "want a list, got %s", typeName(v))
		return nil
	}
	out := make([]map[string]any, 0, len(list))
	for i, e := range list {
		obj, ok := e.(map[string]any)
		if !ok {
			d.fail(fmt.Sprintf("%s.%s[%d]", path, key, i), "want an object, got %s", typeName(e))
			return out
		}
		out = append(out, obj)
	}
	return out
}

func (d *decoder) noExtra(m map[string]any, path string) {
	if len(m) == 0 {
		return
	}
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	d.fail(path, "unknown field %q", keys[0])
}

func (d *decoder) scenario(raw map[string]any) *Scenario {
	m := cloneMap(raw)
	sc := &Scenario{
		Name:        d.str(m, "scenario", "name"),
		Description: d.str(m, "scenario", "description"),
		Seed:        d.i64(m, "scenario", "seed"),
		DurationMS:  d.i64(m, "scenario", "duration_ms"),
		TickMS:      d.i64(m, "scenario", "tick_ms"),
		Expect:      d.str(m, "scenario", "expect"),
	}
	for i, o := range d.objects(m, "scenario", "machines") {
		path := fmt.Sprintf("machines[%d]", i)
		md := MachineDecl{
			Name:      d.str(o, path, "name"),
			StorageMB: d.i64(o, path, "storage_mb"),
			Trace:     d.boolean(o, path, "trace"),
		}
		d.noExtra(o, path)
		sc.Machines = append(sc.Machines, md)
	}
	for i, o := range d.objects(m, "scenario", "workloads") {
		path := fmt.Sprintf("workloads[%d]", i)
		wd := WorkloadDecl{
			Machine:           d.str(o, path, "machine"),
			Group:             d.str(o, path, "group"),
			App:               d.str(o, path, "app"),
			Generator:         d.str(o, path, "generator"),
			Items:             d.i64(o, path, "items"),
			ValueBytes:        d.i64(o, path, "value_bytes"),
			OpsPerTick:        d.i64(o, path, "ops_per_tick"),
			Personality:       d.str(o, path, "personality"),
			CheckpointEveryMS: d.i64(o, path, "checkpoint_every_ms"),
			WALCommit:         d.boolean(o, path, "wal_commit"),
			FoldEvery:         d.i64(o, path, "fold_every"),
		}
		d.noExtra(o, path)
		sc.Workloads = append(sc.Workloads, wd)
	}
	for i, o := range d.objects(m, "scenario", "replications") {
		path := fmt.Sprintf("replications[%d]", i)
		rd := ReplDecl{
			Group:       d.str(o, path, "group"),
			From:        d.str(o, path, "from"),
			To:          d.str(o, path, "to"),
			SyncEveryMS: d.i64(o, path, "sync_every_ms"),
			Drop:        d.f64(o, path, "drop"),
			Dup:         d.f64(o, path, "dup"),
			Reorder:     d.f64(o, path, "reorder"),
			Corrupt:     d.f64(o, path, "corrupt"),
		}
		d.noExtra(o, path)
		sc.Replications = append(sc.Replications, rd)
	}
	if v, ok := m["telemetry"]; ok {
		delete(m, "telemetry")
		obj, isObj := v.(map[string]any)
		if !isObj {
			d.fail("scenario.telemetry", "want an object, got %s", typeName(v))
		} else {
			td := &TelemetryDecl{
				SampleEveryMS: d.i64(obj, "telemetry", "sample_every_ms"),
			}
			for i, o := range d.objects(obj, "telemetry", "slos") {
				path := fmt.Sprintf("telemetry.slos[%d]", i)
				sd := SLODecl{
					Name:   d.str(o, path, "name"),
					Metric: d.str(o, path, "metric"),
					Kind:   d.str(o, path, "kind"),
					Bound:  d.i64(o, path, "bound"),
				}
				d.noExtra(o, path)
				td.SLOs = append(td.SLOs, sd)
			}
			d.noExtra(obj, "telemetry")
			sc.Telemetry = td
		}
	}
	if v, ok := m["placement"]; ok {
		delete(m, "placement")
		obj, isObj := v.(map[string]any)
		if !isObj {
			d.fail("scenario.placement", "want an object, got %s", typeName(v))
		} else {
			pd := &PlacementDecl{
				SyncEveryMS:      d.i64(obj, "placement", "sync_every_ms"),
				HeartbeatEveryMS: d.i64(obj, "placement", "heartbeat_every_ms"),
				DeadAfterMisses:  d.i64(obj, "placement", "dead_after_misses"),
				AuditEveryMS:     d.i64(obj, "placement", "audit_every_ms"),
				RebalanceEveryMS: d.i64(obj, "placement", "rebalance_every_ms"),
				HotFactor:        d.f64(obj, "placement", "hot_factor"),
				MigrateRounds:    d.i64(obj, "placement", "migrate_rounds"),
				HeartbeatDrop:    d.f64(obj, "placement", "heartbeat_drop"),
			}
			d.noExtra(obj, "placement")
			sc.Placement = pd
		}
	}
	for i, o := range d.objects(m, "scenario", "events") {
		path := fmt.Sprintf("events[%d]", i)
		ed := EventDecl{
			AtMS:         d.i64(o, path, "at_ms"),
			Kind:         d.str(o, path, "kind"),
			Machine:      d.str(o, path, "machine"),
			Group:        d.str(o, path, "group"),
			Torn:         d.boolean(o, path, "torn"),
			DropInFlight: d.boolean(o, path, "drop_in_flight"),
			ForMS:        d.i64(o, path, "for_ms"),
			Pages:        d.i64list(o, path, "pages"),
			To:           d.str(o, path, "to"),
			Rounds:       d.i64(o, path, "rounds"),
			RestoreMode:  d.str(o, path, "restore_mode"),
		}
		d.noExtra(o, path)
		sc.Events = append(sc.Events, ed)
	}
	for i, o := range d.objects(m, "scenario", "assertions") {
		path := fmt.Sprintf("assertions[%d]", i)
		ad := AssertionDecl{
			Kind:    d.str(o, path, "kind"),
			Machine: d.str(o, path, "machine"),
			Group:   d.str(o, path, "group"),
			Event:   d.str(o, path, "event"),
			Min:     d.i64(o, path, "min"),
			MaxUS:   d.i64(o, path, "max_us"),
			Max:     d.i64(o, path, "max"),
			Metric:  d.str(o, path, "metric"),
		}
		d.noExtra(o, path)
		sc.Assertions = append(sc.Assertions, ad)
	}
	d.noExtra(m, "scenario")
	return sc
}

// cloneMap shallow-copies so decoding can consume keys without mutating
// the caller's parse tree.
func cloneMap(m map[string]any) map[string]any {
	out := make(map[string]any, len(m))
	for k, v := range m {
		if sub, ok := v.(map[string]any); ok {
			v = cloneMap(sub)
		}
		if list, ok := v.([]any); ok {
			cp := make([]any, len(list))
			for i, e := range list {
				if sub, ok := e.(map[string]any); ok {
					cp[i] = cloneMap(sub)
				} else {
					cp[i] = e
				}
			}
			v = cp
		}
		out[k] = v
	}
	return out
}

func typeName(v any) string {
	switch v.(type) {
	case nil:
		return "null"
	case string:
		return "string"
	case int64:
		return "integer"
	case float64:
		return "number"
	case bool:
		return "bool"
	case []any:
		return "list"
	case map[string]any:
		return "object"
	}
	return fmt.Sprintf("%T", v)
}
