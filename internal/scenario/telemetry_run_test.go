package scenario

import (
	"encoding/json"
	"strings"
	"testing"

	"aurora/internal/telemetry"
)

// teleSrc is the telemetry plane end to end: a traced 4-machine fleet
// under the placement coordinator, a mid-run machine kill the heartbeat
// detector has to discover, SLO rules on the sampler cadence, and metric
// assertions over both a per-machine histogram and the coordinator's
// fleet counters.
const teleSrc = `
name: unit-telemetry
duration_ms: 120
seed: 11
machines:
  - name: a
    trace: true
  - name: b
    trace: true
  - name: c
    trace: true
  - name: d
    trace: true
workloads:
  - machine: a
    group: g0
    app: counter
    ops_per_tick: 40
    checkpoint_every_ms: 10
  - machine: b
    group: g1
    app: counter
    ops_per_tick: 20
    checkpoint_every_ms: 10
telemetry:
  sample_every_ms: 5
  slos:
    - name: stop-p99
      metric: sls.stop.ns
      kind: p99-under
      bound: 1000000
    - name: failover-fast
      metric: fleet.failover.ns
      kind: p99-under
      bound: 50000000
placement:
  sync_every_ms: 10
  heartbeat_every_ms: 5
  dead_after_misses: 3
events:
  - at_ms: 60
    kind: machine-dies
    machine: a
assertions:
  - kind: fleet-health
  - kind: failovers-at-least
    min: 1
  - kind: metric-p99-under
    metric: sls.stop.ns
    max: 1000000
  - kind: metric-p99-under
    metric: fleet.failover.ns
    max: 50000000
  - kind: metric-final-at-least
    metric: fleet.failovers
    min: 1
  - kind: metric-final-at-least
    metric: sls.ckpt.total
    min: 10
  - kind: metric-max-under
    metric: fleet.orphans
    max: 1
  - kind: audit-clean
    machine: b
`

func runTele(t *testing.T, src string, opts RunOptions) *Result {
	t.Helper()
	sc, err := Parse([]byte(src))
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(sc, opts)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestTelemetryScenarioEndToEnd(t *testing.T) {
	res := runTele(t, teleSrc, RunOptions{})
	if !res.Passed {
		t.Fatalf("scenario failed:\n%s", res.Summary())
	}
	if res.Metrics == nil {
		t.Fatal("no metrics snapshot")
	}
	// Per-machine snapshots in declaration order, coordinator last.
	var names []string
	for _, m := range res.Metrics.Machines {
		names = append(names, m.Machine)
	}
	if got := strings.Join(names, ","); got != "a,b,c,d,fleet" {
		t.Fatalf("snapshot members = %s", got)
	}
	// The fleet-merged histograms cover the stop-time series the paper's
	// headline claim rides on.
	foundStop := false
	for _, h := range res.Metrics.Merged {
		if h.Name == "sls.stop.ns" && h.Count > 0 {
			foundStop = true
		}
	}
	if !foundStop {
		t.Fatal("merged snapshot is missing sls.stop.ns")
	}
	if len(res.SLOBreaches) != 0 {
		t.Fatalf("unexpected breaches: %+v", res.SLOBreaches)
	}
}

func TestTelemetryTimelineFlowStitching(t *testing.T) {
	res := runTele(t, teleSrc, RunOptions{})
	if res.TimelineJSON == "" {
		t.Fatal("no merged timeline despite traced machines")
	}
	var events []map[string]any
	if err := json.Unmarshal([]byte(res.TimelineJSON), &events); err != nil {
		t.Fatalf("timeline is not valid JSON: %v", err)
	}
	// One process per machine plus the coordinator.
	procs := map[string]bool{}
	var flowOut, flowIn bool
	var promote bool
	for _, ev := range events {
		if ev["name"] == "process_name" {
			args := ev["args"].(map[string]any)
			procs[args["name"].(string)] = true
		}
		switch ev["ph"] {
		case "s":
			flowOut = true
		case "f":
			flowIn = true
		}
		if ev["name"] == "fleet.promote" {
			promote = true
		}
	}
	for _, want := range []string{"a", "b", "c", "d", "coordinator"} {
		if !procs[want] {
			t.Fatalf("timeline is missing process %q (have %v)", want, procs)
		}
	}
	// The kill -> failover -> promote chain must be stitched: the
	// coordinator's failover span emits a flow start ("s") and the promoted
	// machine's fleet.promote instant binds it ("f").
	if !flowOut || !flowIn || !promote {
		t.Fatalf("flow stitching incomplete: out=%v in=%v promote=%v", flowOut, flowIn, promote)
	}
}

func TestTelemetrySnapshotBitIdentical(t *testing.T) {
	a := runTele(t, teleSrc, RunOptions{})
	b := runTele(t, teleSrc, RunOptions{})
	blobA, err := json.Marshal(a.Metrics)
	if err != nil {
		t.Fatal(err)
	}
	blobB, err := json.Marshal(b.Metrics)
	if err != nil {
		t.Fatal(err)
	}
	if string(blobA) != string(blobB) {
		t.Fatal("metrics snapshots differ across identical runs")
	}
	if a.TimelineJSON != b.TimelineJSON {
		t.Fatal("merged timelines differ across identical runs")
	}
	if a.Fingerprint() != b.Fingerprint() {
		t.Fatalf("fingerprints differ: %s vs %s", a.Fingerprint(), b.Fingerprint())
	}
}

// breachSrc arms an impossible stop-time SLO so every sampled checkpoint
// trips it; the breach must land in the flight ring, the slo.breaches
// counter (audited by the sls.slo family), and the result — exactly once
// per breach episode, not once per sample.
const breachSrc = `
name: unit-telemetry-breach
duration_ms: 40
seed: 3
machines:
  - name: alpha
workloads:
  - machine: alpha
    group: demo
    app: counter
    ops_per_tick: 20
    checkpoint_every_ms: 5
telemetry:
  sample_every_ms: 5
  slos:
    - name: impossible-stop
      metric: sls.stop.ns
      kind: p99-under
      bound: 1
assertions:
  - kind: audit-clean
    machine: alpha
  - kind: flight-contains
    machine: alpha
    event: slo.breach
  - kind: metric-final-at-least
    metric: slo.breaches
    min: 1
`

func TestSLOBreachSurfaces(t *testing.T) {
	res := runTele(t, breachSrc, RunOptions{})
	if !res.Passed {
		t.Fatalf("scenario failed:\n%s", res.Summary())
	}
	if len(res.SLOBreaches) != 1 {
		t.Fatalf("want exactly one breach episode, got %d: %+v", len(res.SLOBreaches), res.SLOBreaches)
	}
	b := res.SLOBreaches[0]
	if b.Machine != "alpha" || b.SLO != "impossible-stop" || b.Value < b.Bound {
		t.Fatalf("breach misrecorded: %+v", b)
	}
	if res.Metrics == nil || len(res.Metrics.Breaches) != 1 {
		t.Fatal("breach missing from the metrics snapshot")
	}
}

// negativeSrc is the expect:fail twin shape the corpus uses: everything
// passes except one metric-p99-under with an impossible bound.
const negativeSrc = `
name: unit-telemetry-negative
duration_ms: 30
seed: 3
expect: fail
machines:
  - name: alpha
workloads:
  - machine: alpha
    group: demo
    app: counter
    ops_per_tick: 20
    checkpoint_every_ms: 5
telemetry:
  sample_every_ms: 5
assertions:
  - kind: audit-clean
    machine: alpha
  - kind: metric-p99-under
    metric: sls.stop.ns
    max: 1
`

func TestMetricAssertionNegative(t *testing.T) {
	res := runTele(t, negativeSrc, RunOptions{})
	if !res.Passed {
		t.Fatalf("expect:fail scenario did not pass:\n%s", res.Summary())
	}
	// Exactly the metric assertion must have tripped.
	for _, a := range res.Assertions {
		wantPass := a.Decl.Kind != AssertMetricP99Under
		if a.Pass != wantPass {
			t.Fatalf("assertion %s pass=%v, want %v (%s)", a.Decl.Kind, a.Pass, wantPass, a.Detail)
		}
	}
}

func TestMetricAssertionMissingMetricFails(t *testing.T) {
	src := strings.Replace(negativeSrc, "metric: sls.stop.ns", "metric: no.such.metric", 1)
	res := runTele(t, src, RunOptions{})
	if !res.Passed {
		t.Fatalf("expect:fail scenario did not pass:\n%s", res.Summary())
	}
	for _, a := range res.Assertions {
		if a.Decl.Kind == AssertMetricP99Under {
			if a.Pass || !strings.Contains(a.Detail, "no samples") {
				t.Fatalf("missing metric: pass=%v detail=%q", a.Pass, a.Detail)
			}
		}
	}
}

// Compile-time link: the runner records breaches with the telemetry
// package's own Breach type, so snapshot and result can never drift.
var _ = telemetry.Breach{}
