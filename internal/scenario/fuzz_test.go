package scenario

import (
	"encoding/json"
	"testing"
)

// FuzzParseScenario hammers the strict decoder — the YAML-subset parser,
// the typed decode, and the validator — with arbitrary bytes. The
// properties: never panic, and any input the decoder accepts must survive
// a JSON round trip and decode to an equally valid scenario. The decoder
// fronts every scenario file CI runs, so "reject or fully normalize" is
// its whole contract.
func FuzzParseScenario(f *testing.F) {
	f.Add([]byte(validSrc))
	f.Add([]byte(crashSrc))
	f.Add([]byte("name: t\nduration_ms: \"ten\"\n"))
	f.Add([]byte("- a\n- b\n"))
	f.Add([]byte("a:\n\tb: 1\n"))
	f.Add([]byte("events:\n  - kind: meteor-strike\n"))
	f.Add([]byte(`name: "unterminated`))
	f.Fuzz(func(t *testing.T, data []byte) {
		sc, err := Parse(data)
		if err != nil {
			return
		}
		out, err := json.Marshal(sc)
		if err != nil {
			t.Fatalf("accepted scenario does not marshal: %v", err)
		}
		var raw map[string]any
		if err := json.Unmarshal(out, &raw); err != nil {
			t.Fatalf("marshaled scenario is not a JSON object: %v", err)
		}
		if _, err := Decode(raw); err != nil {
			t.Fatalf("accepted scenario rejected after JSON round trip: %v\n%s", err, out)
		}
	})
}
