// Package filebench reimplements the FileBench workloads the paper uses to
// evaluate the Aurora object store and file system (§9.1, Figure 3):
// random/sequential writes at 4 KiB and 64 KiB, createfiles, write+fsync,
// and the fileserver, varmail, and webserver personalities.
//
// Workloads run against any vfs.FileSystem on a virtual clock; throughput
// is ops (or bytes) per elapsed virtual second.
package filebench

import (
	"errors"
	"fmt"
	"math/rand"
	"time"

	"aurora/internal/clock"
	"aurora/internal/vfs"
)

// Result is one workload measurement.
type Result struct {
	Workload string
	FS       string
	Ops      int64
	Bytes    int64
	Elapsed  time.Duration
}

// OpsPerSec returns the operation throughput.
func (r Result) OpsPerSec() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.Ops) / r.Elapsed.Seconds()
}

// GiBPerSec returns the data throughput.
func (r Result) GiBPerSec() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.Bytes) / float64(1<<30) / r.Elapsed.Seconds()
}

func (r Result) String() string {
	return fmt.Sprintf("%-12s %-9s %9.0f ops/s %7.2f GiB/s", r.Workload, r.FS, r.OpsPerSec(), r.GiBPerSec())
}

// Config parameterizes a workload run.
type Config struct {
	Clock    clock.Clock
	Duration time.Duration // virtual duration to run
	IOSize   int           // bytes per IO for write workloads
	FileSize int64         // working file size
	NFiles   int           // file population for multi-file workloads
	Seed     int64
}

func (c *Config) defaults() {
	if c.Duration == 0 {
		c.Duration = 200 * time.Millisecond
	}
	if c.IOSize == 0 {
		c.IOSize = 4096
	}
	if c.FileSize == 0 {
		c.FileSize = 64 << 20
	}
	if c.NFiles == 0 {
		c.NFiles = 64
	}
}

// run drives fn until the virtual duration elapses, then syncs.
func run(fs vfs.FileSystem, cfg Config, name string, fn func(r *rand.Rand) (ops, bytes int64, err error)) (Result, error) {
	cfg.defaults()
	r := rand.New(rand.NewSource(cfg.Seed + 1))
	res := Result{Workload: name, FS: fs.Name()}
	sw := clock.StartStopwatch(cfg.Clock)
	for sw.Elapsed() < cfg.Duration {
		ops, bytes, err := fn(r)
		if err != nil {
			return res, fmt.Errorf("%s on %s: %w", name, fs.Name(), err)
		}
		res.Ops += ops
		res.Bytes += bytes
	}
	if err := fs.Sync(); err != nil {
		return res, err
	}
	res.Elapsed = sw.Elapsed()
	return res, nil
}

// create makes a fresh file at path, replacing any earlier instance.
// Personalities restart their naming counters when re-run against a
// recovered (or merely reused) file system; a surviving file from a
// previous run must not abort the workload.
func create(fs vfs.FileSystem, path string) (vfs.File, error) {
	f, err := fs.Create(path)
	if errors.Is(err, vfs.ErrExist) {
		if rmErr := fs.Remove(path); rmErr != nil {
			return nil, rmErr
		}
		f, err = fs.Create(path)
	}
	return f, err
}

// prepFile creates one file of cfg.FileSize filled lazily (sparse).
func prepFile(fs vfs.FileSystem, cfg Config, name string) (vfs.File, error) {
	f, err := create(fs, name)
	if err != nil {
		return nil, err
	}
	if err := f.Truncate(cfg.FileSize); err != nil {
		return nil, err
	}
	return f, nil
}

// RandomWrite measures random whole-IO writes to one large file.
func RandomWrite(fs vfs.FileSystem, cfg Config) (Result, error) {
	cfg.defaults()
	f, err := prepFile(fs, cfg, "bench/randomwrite.dat")
	if err != nil {
		return Result{}, err
	}
	defer f.Close()
	buf := make([]byte, cfg.IOSize)
	slots := cfg.FileSize / int64(cfg.IOSize)
	name := fmt.Sprintf("randwrite-%dK", cfg.IOSize>>10)
	return run(fs, cfg, name, func(r *rand.Rand) (int64, int64, error) {
		off := r.Int63n(slots) * int64(cfg.IOSize)
		if _, err := f.WriteAt(buf, off); err != nil {
			return 0, 0, err
		}
		return 1, int64(cfg.IOSize), nil
	})
}

// SeqWrite measures sequential whole-IO writes, wrapping at FileSize.
func SeqWrite(fs vfs.FileSystem, cfg Config) (Result, error) {
	cfg.defaults()
	f, err := prepFile(fs, cfg, "bench/seqwrite.dat")
	if err != nil {
		return Result{}, err
	}
	defer f.Close()
	buf := make([]byte, cfg.IOSize)
	var off int64
	name := fmt.Sprintf("seqwrite-%dK", cfg.IOSize>>10)
	return run(fs, cfg, name, func(r *rand.Rand) (int64, int64, error) {
		if off+int64(cfg.IOSize) > cfg.FileSize {
			off = 0
		}
		if _, err := f.WriteAt(buf, off); err != nil {
			return 0, 0, err
		}
		off += int64(cfg.IOSize)
		return 1, int64(cfg.IOSize), nil
	})
}

// CreateFiles measures empty-file creation throughput.
func CreateFiles(fs vfs.FileSystem, cfg Config) (Result, error) {
	cfg.defaults()
	n := 0
	return run(fs, cfg, "createfiles", func(r *rand.Rand) (int64, int64, error) {
		f, err := create(fs, fmt.Sprintf("bench/create/f%08d", n))
		if err != nil {
			return 0, 0, err
		}
		n++
		return 1, 0, f.Close()
	})
}

// WriteFsync measures append+fsync pairs of IOSize bytes — the workload
// where Aurora's no-op fsync dominates (Figure 3c).
func WriteFsync(fs vfs.FileSystem, cfg Config) (Result, error) {
	cfg.defaults()
	f, err := create(fs, "bench/fsync.dat")
	if err != nil {
		return Result{}, err
	}
	defer f.Close()
	buf := make([]byte, cfg.IOSize)
	var off int64
	name := fmt.Sprintf("fsync-%dK", cfg.IOSize>>10)
	return run(fs, cfg, name, func(r *rand.Rand) (int64, int64, error) {
		if off >= cfg.FileSize {
			off = 0
		}
		if _, err := f.WriteAt(buf, off); err != nil {
			return 0, 0, err
		}
		off += int64(cfg.IOSize)
		if err := f.Fsync(); err != nil {
			return 0, 0, err
		}
		return 2, int64(cfg.IOSize), nil // write + fsync, as FileBench counts
	})
}

// FileServer simulates the FileBench fileserver personality: a mix of whole
// file creates/writes/reads/appends/deletes over a directory tree.
func FileServer(fs vfs.FileSystem, cfg Config) (Result, error) {
	cfg.defaults()
	const fileSize = 128 << 10
	if err := populate(fs, "bench/fsrv", cfg.NFiles, fileSize); err != nil {
		return Result{}, err
	}
	buf := make([]byte, 16<<10)
	n := cfg.NFiles
	return run(fs, cfg, "fileserver", func(r *rand.Rand) (int64, int64, error) {
		var ops, bytes int64
		pick := fmt.Sprintf("bench/fsrv/f%06d", r.Intn(cfg.NFiles))
		switch r.Intn(10) {
		case 0: // create+write a new file, delete an old one
			name := fmt.Sprintf("bench/fsrv/f%06d", n)
			n++
			f, err := create(fs, name)
			if err != nil {
				return 0, 0, err
			}
			for w := 0; w < fileSize/len(buf); w++ {
				if _, err := f.Append(buf); err != nil {
					return 0, 0, err
				}
				ops++
				bytes += int64(len(buf))
			}
			f.Close()
			if fs.Exists(pick) {
				if err := fs.Remove(pick); err != nil {
					return 0, 0, err
				}
			}
			ops += 2
		case 1, 2: // append
			f, err := fs.Open(pick)
			if err != nil {
				return ops, bytes, nil // deleted by a previous op
			}
			if _, err := f.Append(buf); err != nil {
				return 0, 0, err
			}
			f.Close()
			ops++
			bytes += int64(len(buf))
		default: // whole-file read
			f, err := fs.Open(pick)
			if err != nil {
				return ops, bytes, nil
			}
			sz := f.Size()
			for off := int64(0); off < sz; off += int64(len(buf)) {
				if _, err := f.ReadAt(buf, off); err != nil {
					return 0, 0, err
				}
				ops++
				bytes += int64(len(buf))
			}
			f.Close()
		}
		ops++
		return ops, bytes, nil
	})
}

// VarMail simulates the FileBench varmail personality: create, append,
// fsync, read, delete — the fsync-per-message pattern of an MTA.
func VarMail(fs vfs.FileSystem, cfg Config) (Result, error) {
	cfg.defaults()
	const msgSize = 16 << 10
	if err := populate(fs, "bench/mail", cfg.NFiles, msgSize); err != nil {
		return Result{}, err
	}
	buf := make([]byte, msgSize)
	n := cfg.NFiles
	return run(fs, cfg, "varmail", func(r *rand.Rand) (int64, int64, error) {
		// Deliver: create + write + fsync.
		name := fmt.Sprintf("bench/mail/m%08d", n)
		n++
		f, err := create(fs, name)
		if err != nil {
			return 0, 0, err
		}
		if _, err := f.Append(buf); err != nil {
			return 0, 0, err
		}
		if err := f.Fsync(); err != nil {
			return 0, 0, err
		}
		f.Close()
		// Read a message, append a flag update, fsync again.
		pick := fmt.Sprintf("bench/mail/m%08d", cfg.NFiles+r.Intn(n-cfg.NFiles))
		if g, err := fs.Open(pick); err == nil {
			g.ReadAt(buf, 0)
			g.Append(buf[:256])
			if err := g.Fsync(); err != nil {
				return 0, 0, err
			}
			g.Close()
		}
		// Expire an old message.
		old := fmt.Sprintf("bench/mail/m%08d", r.Intn(cfg.NFiles))
		if fs.Exists(old) {
			fs.Remove(old)
		}
		return 8, msgSize + 256, nil
	})
}

// WebServer simulates the FileBench webserver personality: open/read whole
// files, plus a small append to a shared log.
func WebServer(fs vfs.FileSystem, cfg Config) (Result, error) {
	cfg.defaults()
	const pageSize = 32 << 10
	if err := populate(fs, "bench/web", cfg.NFiles, pageSize); err != nil {
		return Result{}, err
	}
	log, err := create(fs, "bench/web/access.log")
	if err != nil {
		return Result{}, err
	}
	defer log.Close()
	buf := make([]byte, pageSize)
	return run(fs, cfg, "webserver", func(r *rand.Rand) (int64, int64, error) {
		var ops, bytes int64
		for i := 0; i < 10; i++ { // 10 reads per log append, as FileBench
			pick := fmt.Sprintf("bench/web/f%06d", r.Intn(cfg.NFiles))
			f, err := fs.Open(pick)
			if err != nil {
				return 0, 0, err
			}
			if _, err := f.ReadAt(buf, 0); err != nil {
				return 0, 0, err
			}
			f.Close()
			ops += 2
			bytes += pageSize
		}
		if _, err := log.Append(buf[:512]); err != nil {
			return 0, 0, err
		}
		ops++
		bytes += 512
		return ops, bytes, nil
	})
}

// populate creates n files of size bytes under dir. Files that already
// exist (a previous run, or a run resumed on a recovered file system)
// are kept as-is: the population is the precondition, not the payload.
func populate(fs vfs.FileSystem, dir string, n int, size int64) error {
	buf := make([]byte, 16<<10)
	for i := 0; i < n; i++ {
		name := fmt.Sprintf("%s/f%06d", dir, i)
		if fs.Exists(name) {
			continue
		}
		f, err := fs.Create(name)
		if err != nil {
			return err
		}
		for off := int64(0); off < size; off += int64(len(buf)) {
			run := int64(len(buf))
			if off+run > size {
				run = size - off
			}
			if _, err := f.WriteAt(buf[:run], off); err != nil {
				return err
			}
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	return fs.Sync()
}
