package filebench

import (
	"testing"
	"time"

	"aurora/internal/clock"
	"aurora/internal/device"
	"aurora/internal/fsbase"
	"aurora/internal/objstore"
	"aurora/internal/slsfs"
	"aurora/internal/vfs"
)

// mounts builds one instance of every file system on its own device.
func mounts(t *testing.T) (map[string]vfs.FileSystem, *clock.Virtual) {
	t.Helper()
	clk := clock.NewVirtual()
	costs := clock.DefaultCosts()
	out := make(map[string]vfs.FileSystem)

	dev := device.NewStripe(clk, costs, 4, 64<<10, 1<<30)
	store, err := objstore.Format(dev, clk, costs)
	if err != nil {
		t.Fatal(err)
	}
	afs, err := slsfs.Format(store, clk, costs)
	if err != nil {
		t.Fatal(err)
	}
	afs.SetCheckpointPeriod(10 * time.Millisecond)
	out["aurora"] = afs

	out["ffs"] = fsbase.New(clk, device.NewStripe(clk, costs, 4, 64<<10, 1<<30), fsbase.FFS())
	out["zfs"] = fsbase.New(clk, device.NewStripe(clk, costs, 4, 64<<10, 1<<30), fsbase.ZFS(false))
	out["zfs+csum"] = fsbase.New(clk, device.NewStripe(clk, costs, 4, 64<<10, 1<<30), fsbase.ZFS(true))
	return out, clk
}

func cfg(clk clock.Clock, iosize int) Config {
	return Config{
		Clock:    clk,
		Duration: 50 * time.Millisecond,
		IOSize:   iosize,
		FileSize: 16 << 20,
		NFiles:   16,
		Seed:     42,
	}
}

func TestAllWorkloadsRunOnAllFilesystems(t *testing.T) {
	type wl struct {
		name string
		fn   func(vfs.FileSystem, Config) (Result, error)
	}
	wls := []wl{
		{"randomwrite", RandomWrite},
		{"seqwrite", SeqWrite},
		{"createfiles", CreateFiles},
		{"writefsync", WriteFsync},
		{"fileserver", FileServer},
		{"varmail", VarMail},
		{"webserver", WebServer},
	}
	for _, w := range wls {
		t.Run(w.name, func(t *testing.T) {
			fss, clk := mounts(t)
			for name, fs := range fss {
				res, err := w.fn(fs, cfg(clk, 4096))
				if err != nil {
					t.Fatalf("%s on %s: %v", w.name, name, err)
				}
				if res.Ops <= 0 {
					t.Fatalf("%s on %s: zero ops", w.name, name)
				}
				if res.Elapsed <= 0 {
					t.Fatalf("%s on %s: zero elapsed", w.name, name)
				}
			}
		})
	}
}

func TestFigure3Shape(t *testing.T) {
	// The relationships the paper's Figure 3 shows must hold in the model.
	fss, clk := mounts(t)

	// (b) 4 KiB random writes: FFS (fragments) beats Aurora beats ZFS.
	rw := map[string]Result{}
	for name, fs := range fss {
		res, err := RandomWrite(fs, cfg(clk, 4096))
		if err != nil {
			t.Fatal(err)
		}
		rw[name] = res
	}
	if !(rw["ffs"].GiBPerSec() > rw["aurora"].GiBPerSec()) {
		t.Errorf("4K random: FFS %.2f <= Aurora %.2f GiB/s", rw["ffs"].GiBPerSec(), rw["aurora"].GiBPerSec())
	}
	if !(rw["aurora"].GiBPerSec() > rw["zfs"].GiBPerSec()) {
		t.Errorf("4K random: Aurora %.2f <= ZFS %.2f GiB/s", rw["aurora"].GiBPerSec(), rw["zfs"].GiBPerSec())
	}
	if !(rw["zfs"].GiBPerSec() > rw["zfs+csum"].GiBPerSec()) {
		t.Errorf("4K random: ZFS %.2f <= ZFS+CSUM %.2f GiB/s", rw["zfs"].GiBPerSec(), rw["zfs+csum"].GiBPerSec())
	}

	// (a) 64 KiB: Aurora beats ZFS.
	fss, clk = mounts(t)
	rw64 := map[string]Result{}
	for name, fs := range fss {
		res, err := RandomWrite(fs, cfg(clk, 64<<10))
		if err != nil {
			t.Fatal(err)
		}
		rw64[name] = res
	}
	if !(rw64["aurora"].GiBPerSec() > rw64["zfs"].GiBPerSec()) {
		t.Errorf("64K random: Aurora %.2f <= ZFS %.2f GiB/s", rw64["aurora"].GiBPerSec(), rw64["zfs"].GiBPerSec())
	}

	// (c) write+fsync: Aurora's no-op fsync wins by a wide margin.
	fss, clk = mounts(t)
	fsync := map[string]Result{}
	for name, fs := range fss {
		res, err := WriteFsync(fs, cfg(clk, 4096))
		if err != nil {
			t.Fatal(err)
		}
		fsync[name] = res
	}
	if !(fsync["aurora"].OpsPerSec() > 2*fsync["ffs"].OpsPerSec()) {
		t.Errorf("fsync: Aurora %.0f not >> FFS %.0f ops/s", fsync["aurora"].OpsPerSec(), fsync["ffs"].OpsPerSec())
	}
	if !(fsync["ffs"].OpsPerSec() > fsync["zfs"].OpsPerSec()) {
		t.Errorf("fsync: FFS %.0f <= ZFS %.0f ops/s", fsync["ffs"].OpsPerSec(), fsync["zfs"].OpsPerSec())
	}

	// (c) createfiles: Aurora's global-lock create is the slowest.
	fss, clk = mounts(t)
	creates := map[string]Result{}
	for name, fs := range fss {
		res, err := CreateFiles(fs, cfg(clk, 4096))
		if err != nil {
			t.Fatal(err)
		}
		creates[name] = res
	}
	if !(creates["aurora"].OpsPerSec() < creates["ffs"].OpsPerSec()) {
		t.Errorf("createfiles: Aurora %.0f >= FFS %.0f ops/s", creates["aurora"].OpsPerSec(), creates["ffs"].OpsPerSec())
	}

	// (d) varmail: Aurora wins because the workload is fsync-bound.
	fss, clk = mounts(t)
	vm := map[string]Result{}
	for name, fs := range fss {
		res, err := VarMail(fs, cfg(clk, 4096))
		if err != nil {
			t.Fatal(err)
		}
		vm[name] = res
	}
	if !(vm["aurora"].OpsPerSec() > vm["zfs"].OpsPerSec()) {
		t.Errorf("varmail: Aurora %.0f <= ZFS %.0f ops/s", vm["aurora"].OpsPerSec(), vm["zfs"].OpsPerSec())
	}
	if !(vm["aurora"].OpsPerSec() > vm["ffs"].OpsPerSec()) {
		t.Errorf("varmail: Aurora %.0f <= FFS %.0f ops/s", vm["aurora"].OpsPerSec(), vm["ffs"].OpsPerSec())
	}
}

func TestResultFormatting(t *testing.T) {
	r := Result{Workload: "x", FS: "y", Ops: 1000, Bytes: 1 << 30, Elapsed: time.Second}
	if r.OpsPerSec() != 1000 {
		t.Fatalf("OpsPerSec = %v", r.OpsPerSec())
	}
	if r.GiBPerSec() != 1 {
		t.Fatalf("GiBPerSec = %v", r.GiBPerSec())
	}
	if s := r.String(); s == "" {
		t.Fatal("empty String()")
	}
	var zero Result
	if zero.OpsPerSec() != 0 || zero.GiBPerSec() != 0 {
		t.Fatal("zero-elapsed result not zero")
	}
}
