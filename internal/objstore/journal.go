package objstore

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"

	"aurora/internal/clock"
)

// Journal objects are the store's one non-COW path, backing the sls_journal
// API (§7, "Non-COW Objects for the Aurora API"): a preallocated extent
// updated in place with synchronous appends, giving custom applications a
// write-ahead log with microsecond latency. The paper reports a 4 KiB
// synchronous append in 28 µs; the cost model is solved from Table 5.
//
// Frames carry a generation and a sequence number. Truncate bumps the
// generation and records the flushed-through sequence; neither takes effect
// durably until the covering checkpoint commits, so recovery replays
// exactly the frames that post-date the restored checkpoint's truncation
// point (replay is at-least-once; consumers replay idempotently).

// ErrJournalFull is returned when an append exceeds the extent.
var ErrJournalFull = errors.New("objstore: journal full")

// frameHeaderLen is magic(4) + gen(8) + seq(8) + len(4) + crc(4).
const frameHeaderLen = 28

// journalState is the journal-shaped part of an object.
type journalState struct {
	extentAddr int64
	capBlocks  int64
	generation uint64
	flushedSeq uint64

	// Runtime fields (rebuilt by scan after recovery).
	tail    int64
	lastSeq uint64
	scanned bool
}

// Journal is a handle to a journal object.
type Journal struct {
	s *Store
	o *object
}

// Entry is one recovered journal record.
type Entry struct {
	Seq     uint64
	Payload []byte
}

// CreateJournal creates oid as a journal with the given byte capacity
// (rounded up to whole blocks, preallocated and never moved).
func (s *Store) CreateJournal(oid OID, utype uint16, capacity int64) (*Journal, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.objects[oid]; ok {
		return nil, fmt.Errorf("objstore: object %d already exists", oid)
	}
	blocks := blocksFor(capacity)
	if blocks == 0 {
		blocks = 1
	}
	addr, err := s.allocRun(blocks)
	if err != nil {
		return nil, err
	}
	o := s.ensure(oid, utype)
	o.journal = &journalState{
		extentAddr: addr,
		capBlocks:  blocks,
		generation: 1,
		scanned:    true,
	}
	o.size = 0
	s.walNote(walOp{kind: walOpJournal, oid: oid, utype: utype,
		addr: addr, size: blocks, gen: 1, fseq: 0})
	return &Journal{s: s, o: o}, nil
}

// OpenJournal opens an existing journal, scanning the extent to find the
// durable tail (the recovery path).
func (s *Store) OpenJournal(oid OID) (*Journal, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	o, err := s.lookup(oid)
	if err != nil {
		return nil, err
	}
	if o.journal == nil {
		return nil, ErrNotJournal
	}
	j := &Journal{s: s, o: o}
	if !o.journal.scanned {
		if _, err := j.scanLocked(); err != nil {
			return nil, err
		}
	}
	return j, nil
}

// OID returns the journal's object identifier.
func (j *Journal) OID() OID { return j.o.oid }

// Capacity returns the extent size in bytes.
func (j *Journal) Capacity() int64 { return j.o.journal.capBlocks * BlockSize }

// Used returns the bytes consumed by the current generation's frames.
func (j *Journal) Used() int64 {
	j.s.mu.Lock()
	defer j.s.mu.Unlock()
	return j.o.journal.tail
}

// Append synchronously writes one record. On return the record is durable:
// the caller's virtual clock has advanced past the transfer. It returns the
// record's sequence number.
func (j *Journal) Append(payload []byte) (uint64, error) {
	j.s.mu.Lock()
	js := j.o.journal
	frame := make([]byte, frameHeaderLen+len(payload))
	need := int64(len(frame))
	if js.tail+need > j.Capacity() {
		j.s.mu.Unlock()
		return 0, fmt.Errorf("%w: need %d bytes, %d free", ErrJournalFull, need, j.Capacity()-js.tail)
	}
	js.lastSeq++
	seq := js.lastSeq
	binary.LittleEndian.PutUint32(frame[0:], magicFrame)
	binary.LittleEndian.PutUint64(frame[4:], js.generation)
	binary.LittleEndian.PutUint64(frame[12:], seq)
	binary.LittleEndian.PutUint32(frame[20:], uint32(len(payload)))
	copy(frame[frameHeaderLen:], payload)
	binary.LittleEndian.PutUint32(frame[24:], frameCRC(frame))
	off := js.extentAddr + js.tail
	js.tail += need
	j.o.size = js.tail
	done, err := j.s.dev.SubmitWrite(frame, off)
	if err != nil {
		j.s.mu.Unlock()
		return 0, err
	}
	// Fold the frame into the interval's durability horizon: the next
	// superblock must not be able to land on media that lost this append,
	// or recovery to that epoch would find a gap in the extent.
	if done > j.s.pendingDurable {
		j.s.pendingDurable = done
	}
	dev, clk, costs := j.s.dev, j.s.clk, j.s.costs
	j.s.mu.Unlock()
	// The journal path is synchronous: charge the full calibrated latency,
	// then wait out the device transfer itself. Without the wait the frame
	// could still sit in a member queue when power is cut, violating the
	// durable-on-return contract above.
	clk.Advance(clock.XferTime(costs.JournalLatency, costs.JournalBps, need))
	dev.WaitUntil(done)
	return seq, nil
}

// frameCRC computes the checksum over a frame with its CRC field zeroed.
func frameCRC(frame []byte) uint32 {
	h := crc32.NewIEEE()
	h.Write(frame[:24])
	h.Write([]byte{0, 0, 0, 0})
	h.Write(frame[frameHeaderLen:])
	return h.Sum32()
}

// Truncate logically empties the journal: it bumps the generation and
// records that every sequence so far is flushed. The truncation becomes
// durable at the next checkpoint; call it only after the checkpoint that
// captures the journaled data has committed (the RocksDB pattern: fill WAL,
// trigger checkpoint, barrier, truncate).
func (j *Journal) Truncate() {
	j.s.mu.Lock()
	defer j.s.mu.Unlock()
	js := j.o.journal
	js.generation++
	js.flushedSeq = js.lastSeq
	js.tail = 0
	j.o.size = 0
	j.o.dirty = true
	j.s.walNote(walOp{kind: walOpJournal, oid: j.o.oid, utype: j.o.utype,
		addr: js.extentAddr, size: js.capBlocks, gen: js.generation, fseq: js.flushedSeq})
}

// Entries scans the extent and returns the records that post-date the
// committed truncation point, in sequence order. This is the recovery
// replay path.
func (j *Journal) Entries() ([]Entry, error) {
	j.s.mu.Lock()
	defer j.s.mu.Unlock()
	return j.scanLocked()
}

// scanLocked walks frames from the extent head. Frames are accepted while
// the checksum holds, the generation is at least the committed generation
// and non-decreasing, and sequence numbers ascend; leftovers from older
// generations terminate the scan. Requires mu.
func (j *Journal) scanLocked() ([]Entry, error) {
	js := j.o.journal
	capBytes := js.capBlocks * BlockSize
	var (
		entries []Entry
		off     int64
		maxGen  = js.generation
		lastSeq uint64
	)
	hdr := make([]byte, frameHeaderLen)
	for off+frameHeaderLen <= capBytes {
		if _, err := j.s.dev.ReadAt(hdr, js.extentAddr+off); err != nil {
			return nil, err
		}
		if binary.LittleEndian.Uint32(hdr[0:]) != magicFrame {
			break
		}
		gen := binary.LittleEndian.Uint64(hdr[4:])
		seq := binary.LittleEndian.Uint64(hdr[12:])
		plen := int64(binary.LittleEndian.Uint32(hdr[20:]))
		if gen < maxGen || off+frameHeaderLen+plen > capBytes {
			break
		}
		frame := make([]byte, frameHeaderLen+plen)
		if _, err := j.s.dev.ReadAt(frame, js.extentAddr+off); err != nil {
			return nil, err
		}
		if binary.LittleEndian.Uint32(frame[24:]) != frameCRC(frame) {
			break
		}
		if seq <= lastSeq && lastSeq != 0 {
			break
		}
		maxGen = gen
		lastSeq = seq
		if seq > js.flushedSeq {
			entries = append(entries, Entry{Seq: seq, Payload: frame[frameHeaderLen:]})
		}
		off += frameHeaderLen + plen
	}
	js.tail = off
	if lastSeq > js.lastSeq {
		js.lastSeq = lastSeq
	}
	js.generation = maxGen
	js.scanned = true
	j.o.size = off
	return entries, nil
}
