package objstore

import (
	"fmt"
	"time"

	"aurora/internal/clock"
)

// Checkpointing: the commit path, crash recovery, and read-only views of
// retained history.

// CheckpointStats describes one committed checkpoint.
type CheckpointStats struct {
	Epoch         Epoch
	DirtyObjects  int
	MetaBytes     int64
	DurableAt     time.Duration // virtual time the commit is durable
	CommitCharged time.Duration // virtual time charged synchronously
}

// Checkpoint commits all modifications since the previous checkpoint as a
// new epoch. Data blocks were already submitted asynchronously by the write
// paths; Checkpoint writes block-map chunks, object records for dirty
// objects, the index, and finally the superblock. The superblock is ordered
// after everything else is durable, so a crash at any point leaves the
// previous checkpoint intact.
//
// The call itself is cheap in virtual time (metadata submission); the
// returned stats carry the virtual durability time, which callers such as
// the orchestrator wait on before externalizing effects.
func (s *Store) Checkpoint() (CheckpointStats, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	sw := clock.StartStopwatch(s.clk)
	cur := s.curEpoch()
	st := CheckpointStats{Epoch: cur}

	// 1. Flush dirty chunks and records of dirty objects.
	for _, o := range s.objects {
		if !o.dirty {
			continue
		}
		st.DirtyObjects++
		for _, c := range o.chunks {
			if !c.dirty {
				continue
			}
			addr, err := s.allocBlock()
			if err != nil {
				return st, err
			}
			done, err := s.dev.SubmitWrite(encodeChunk(c), addr)
			if err != nil {
				return st, err
			}
			if done > s.pendingDurable {
				s.pendingDurable = done
			}
			s.retireBlock(c.addr)
			c.addr = addr
			c.dirty = false
			st.MetaBytes += BlockSize
		}
		rec := encodeRecord(o)
		if o.recordAddr != 0 {
			s.retireRun(o.recordAddr, blocksFor(o.recordLen))
		}
		addr, err := s.allocRun(blocksFor(int64(len(rec))))
		if err != nil {
			return st, err
		}
		done, err := s.dev.SubmitWrite(rec, addr)
		if err != nil {
			return st, err
		}
		if done > s.pendingDurable {
			s.pendingDurable = done
		}
		o.recordAddr = addr
		o.recordLen = int64(len(rec))
		o.dirty = false
		st.MetaBytes += int64(len(rec))
	}
	s.deleted = make(map[OID]bool)

	// 2. Build and write the index. nextBlk must cover the index's own
	// blocks, so reserve them first with a size-stable encoding, then
	// patch the field.
	idx := &indexState{
		epoch:    cur,
		nextOID:  s.nextOID,
		nextBlk:  0, // patched below
		freelist: s.freelist,
		deadlist: s.deadlist,
		retained: s.retained,
	}
	for oid, o := range s.objects {
		idx.objects = append(idx.objects, indexEntry{oid: oid, addr: o.recordAddr, len: o.recordLen})
	}
	e := encodeIndex(idx)
	idxLen := int64(len(e.b)) + 4 // + CRC
	idxAddr, err := s.allocMetaRun(blocksFor(idxLen))
	if err != nil {
		return st, err
	}
	patchI64(e.b, nextBlkOffset, s.nextBlk)
	idxBytes := e.seal()
	done, err := s.dev.SubmitWrite(idxBytes, idxAddr)
	if err != nil {
		return st, err
	}
	if done > s.pendingDurable {
		s.pendingDurable = done
	}
	st.MetaBytes += idxLen

	if s.FailBeforeCommit {
		s.FailBeforeCommit = false
		return st, fmt.Errorf("objstore: injected crash before commit (epoch %d)", cur)
	}

	// 3. Commit: superblock ordered after all interval writes are durable.
	sb := encodeSuperblock(superblock{epoch: cur, indexAddr: idxAddr, indexLen: idxLen})
	slotOff := int64(s.superSlot) * BlockSize
	sbDone, err := s.dev.SubmitWrite(sb, slotOff)
	if err != nil {
		return st, err
	}
	if s.pendingDurable > sbDone {
		// The superblock transfer cannot start before its dependencies
		// drain; model the serialization with one extra write latency.
		sbDone = s.pendingDurable + s.costs.DevWriteLatency
	}
	s.superSlot = 1 - s.superSlot
	s.pendingDurable = sbDone

	// 4. The committed checkpoint joins retained history. Its index
	// blocks are deliberately NOT deadlisted: their lifetime is implied
	// by the retained list itself (freed directly when the checkpoint is
	// released). Serializing them into the index would make the index
	// describe its own storage — self-referential metadata whose size
	// compounds every epoch.
	s.retained = append(s.retained, ckptInfo{epoch: cur, indexAddr: idxAddr, indexLen: idxLen})
	for i := int64(0); i < blocksFor(idxLen); i++ {
		delete(s.birthOf, idxAddr+i*BlockSize)
	}
	s.epoch = cur
	s.durableAt[cur] = sbDone
	s.stats.Checkpoints++
	s.stats.MetaBytes += st.MetaBytes
	st.DurableAt = sbDone
	st.CommitCharged = sw.Elapsed()
	return st, nil
}

// patchI64 overwrites an 8-byte little-endian field in place.
func patchI64(b []byte, off int, v int64) {
	for i := 0; i < 8; i++ {
		b[off+i] = byte(uint64(v) >> (8 * i))
	}
}

// WaitDurable blocks (in virtual time) until epoch's commit is durable.
func (s *Store) WaitDurable(epoch Epoch) error {
	s.mu.Lock()
	t, ok := s.durableAt[epoch]
	s.mu.Unlock()
	if !ok {
		return fmt.Errorf("%w: %d", ErrNoEpoch, epoch)
	}
	s.dev.WaitUntil(t)
	return nil
}

// DurableAt returns the virtual time epoch became durable.
func (s *Store) DurableAt(epoch Epoch) (time.Duration, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	t, ok := s.durableAt[epoch]
	return t, ok
}

// readSuperblocks picks the valid superblock with the highest epoch,
// returning it and its slot.
func (s *Store) readSuperblocks() (superblock, int, error) {
	var best superblock
	slot := -1
	buf := make([]byte, BlockSize)
	for i := 0; i < 2; i++ {
		if _, err := s.dev.ReadAt(buf, int64(i)*BlockSize); err != nil {
			return superblock{}, 0, err
		}
		if sb, ok := decodeSuperblock(buf); ok && (slot == -1 || sb.epoch > best.epoch) {
			best, slot = sb, i
		}
	}
	if slot == -1 {
		return superblock{}, 0, fmt.Errorf("%w: no valid superblock", ErrCorrupt)
	}
	return best, slot, nil
}

// loadIndex replaces the store's live state with the index at addr.
// Requires the caller to hold no references into the old state.
func (s *Store) loadIndex(addr, length int64) error {
	idx, err := s.fetchIndex(addr, length)
	if err != nil {
		return err
	}
	s.nextOID = idx.nextOID
	s.nextBlk = idx.nextBlk
	s.freelist = idx.freelist
	s.deadlist = idx.deadlist
	s.retained = append(idx.retained, ckptInfo{epoch: idx.epoch, indexAddr: addr, indexLen: length})
	s.objects = make(map[OID]*object, len(idx.objects))
	for _, ent := range idx.objects {
		o, err := s.fetchRecord(ent.addr, ent.len)
		if err != nil {
			return err
		}
		o.recordAddr = ent.addr
		o.recordLen = ent.len
		s.objects[o.oid] = o
	}
	return nil
}

// fetchIndex reads and decodes an index.
func (s *Store) fetchIndex(addr, length int64) (*indexState, error) {
	buf := make([]byte, length)
	if _, err := s.dev.ReadAt(buf, addr); err != nil {
		return nil, err
	}
	return decodeIndex(buf)
}

// fetchRecord reads and decodes an object record.
func (s *Store) fetchRecord(addr, length int64) (*object, error) {
	buf := make([]byte, length)
	if _, err := s.dev.ReadAt(buf, addr); err != nil {
		return nil, err
	}
	return decodeRecord(buf)
}

// View is a read-only image of one retained checkpoint, used for restoring
// history ("sls restore" of a named checkpoint, time-travel debugging).
type View struct {
	s       *Store
	epoch   Epoch
	objects map[OID]*object
}

// RestoreView opens a read-only view of epoch. The current epoch and any
// retained epoch are viewable.
func (s *Store) RestoreView(epoch Epoch) (*View, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	var info *ckptInfo
	for i := range s.retained {
		if s.retained[i].epoch == epoch {
			info = &s.retained[i]
			break
		}
	}
	if info == nil {
		return nil, fmt.Errorf("%w: %d", ErrNoEpoch, epoch)
	}
	idx, err := s.fetchIndex(info.indexAddr, info.indexLen)
	if err != nil {
		return nil, err
	}
	v := &View{s: s, epoch: epoch, objects: make(map[OID]*object, len(idx.objects))}
	for _, ent := range idx.objects {
		o, err := s.fetchRecord(ent.addr, ent.len)
		if err != nil {
			return nil, err
		}
		v.objects[o.oid] = o
	}
	return v, nil
}

// Epoch returns the epoch the view images.
func (v *View) Epoch() Epoch { return v.epoch }

// Objects lists OIDs present in the view.
func (v *View) Objects() []OID {
	out := make([]OID, 0, len(v.objects))
	for oid := range v.objects {
		out = append(out, oid)
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j-1] > out[j]; j-- {
			out[j-1], out[j] = out[j], out[j-1]
		}
	}
	return out
}

// Exists reports whether oid existed at the view's epoch.
func (v *View) Exists(oid OID) bool {
	_, ok := v.objects[oid]
	return ok
}

// UType returns oid's type tag at the view's epoch.
func (v *View) UType(oid OID) (uint16, error) {
	o, ok := v.objects[oid]
	if !ok {
		return 0, fmt.Errorf("%w: %d", ErrNoObject, oid)
	}
	return o.utype, nil
}

// Size returns oid's size at the view's epoch.
func (v *View) Size(oid OID) (int64, error) {
	o, ok := v.objects[oid]
	if !ok {
		return 0, fmt.Errorf("%w: %d", ErrNoObject, oid)
	}
	return o.size, nil
}

// GetRecord returns oid's full content at the view's epoch.
func (v *View) GetRecord(oid OID) ([]byte, error) {
	o, ok := v.objects[oid]
	if !ok {
		return nil, fmt.Errorf("%w: %d", ErrNoObject, oid)
	}
	if o.journal != nil {
		return nil, ErrIsJournal
	}
	if o.chunks == nil {
		return append([]byte(nil), o.inline...), nil
	}
	out := make([]byte, o.size)
	v.s.mu.Lock()
	defer v.s.mu.Unlock()
	if err := v.s.readRangeLocked(o, 0, out); err != nil {
		return nil, err
	}
	return out, nil
}

// DiffPages reports the page indexes of oid whose stored block differs
// between retained epoch old and the current committed state — the changed
// set a pre-copy migration round must resend. An object absent at the old
// epoch diffs in full.
func (s *Store) DiffPages(oid OID, old Epoch) ([]int64, error) {
	v, err := s.RestoreView(old)
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	cur, err := s.lookup(oid)
	if err != nil {
		s.mu.Unlock()
		return nil, err
	}
	oldObj := v.objects[oid]
	// Collect the union of chunk indexes.
	cis := make(map[int64]bool)
	for ci := range cur.chunks {
		cis[ci] = true
	}
	if oldObj != nil {
		for ci := range oldObj.chunks {
			cis[ci] = true
		}
	}
	var out []int64
	for ci := range cis {
		curC, err := s.loadChunk(cur, ci*ChunkFanout, false)
		if err != nil {
			s.mu.Unlock()
			return nil, err
		}
		var oldC *chunk
		if oldObj != nil {
			oldC, err = s.loadChunk(oldObj, ci*ChunkFanout, false)
			if err != nil {
				s.mu.Unlock()
				return nil, err
			}
		}
		for slot := int64(0); slot < ChunkFanout; slot++ {
			var ca, oa int64
			if curC != nil {
				ca = curC.addrs[slot]
			}
			if oldC != nil {
				oa = oldC.addrs[slot]
			}
			if ca != oa && ca != 0 {
				out = append(out, ci*ChunkFanout+slot)
			}
		}
	}
	s.mu.Unlock()
	sortInt64s(out)
	return out, nil
}

// EachPageBulk streams every present page of oid at the view's epoch,
// charging pipelined bandwidth (the eager history-restore path).
func (v *View) EachPageBulk(oid OID, fn func(pg int64, data []byte) error) (int64, error) {
	o, ok := v.objects[oid]
	if !ok {
		return 0, fmt.Errorf("%w: %d", ErrNoObject, oid)
	}
	return v.s.eachPageBulkObj(o, fn)
}

// HasPage reports whether oid stored page pg at the view's epoch.
func (v *View) HasPage(oid OID, pg int64) (bool, error) {
	o, ok := v.objects[oid]
	if !ok {
		return false, fmt.Errorf("%w: %d", ErrNoObject, oid)
	}
	v.s.mu.Lock()
	defer v.s.mu.Unlock()
	return v.s.hasPageLocked(o, pg)
}

// ReadPage reads one page of oid at the view's epoch.
func (v *View) ReadPage(oid OID, pg int64, buf []byte) (bool, error) {
	o, ok := v.objects[oid]
	if !ok {
		return false, fmt.Errorf("%w: %d", ErrNoObject, oid)
	}
	if o.journal != nil {
		return false, ErrIsJournal
	}
	if o.chunks == nil {
		for i := range buf {
			buf[i] = 0
		}
		off := pg * BlockSize
		if off < int64(len(o.inline)) {
			copy(buf, o.inline[off:])
			return true, nil
		}
		return false, nil
	}
	v.s.mu.Lock()
	defer v.s.mu.Unlock()
	return v.s.readPageLocked(o, pg, buf)
}
