package objstore

import (
	"fmt"
	"sort"
	"time"

	"aurora/internal/clock"
	"aurora/internal/flight"
	"aurora/internal/trace"
)

// Checkpointing: the commit path, crash recovery, and read-only views of
// retained history.

// CheckpointStats describes one committed checkpoint.
type CheckpointStats struct {
	Epoch         Epoch
	DirtyObjects  int
	MetaBytes     int64
	DurableAt     time.Duration // virtual time the commit is durable
	CommitCharged time.Duration // virtual time charged synchronously
}

// Checkpoint commits all modifications since the previous checkpoint as a
// new epoch. Data blocks were already submitted asynchronously by the write
// paths; Checkpoint writes block-map chunks, object records for dirty
// objects, the index, and finally the superblock. The superblock is ordered
// after everything else is durable, so a crash at any point leaves the
// previous checkpoint intact.
//
// The call itself is cheap in virtual time (metadata submission); the
// returned stats carry the virtual durability time, which callers such as
// the orchestrator wait on before externalizing effects.
func (s *Store) Checkpoint() (CheckpointStats, error) {
	// When WAL frames are outstanding this checkpoint is their fold: record
	// it before the flight ring is serialized so the committing snapshot
	// carries the fold that absorbed the frames.
	s.mu.Lock()
	foldBase, foldFrames := s.curEpoch(), s.walSeq
	s.mu.Unlock()
	if foldFrames > 0 {
		s.fl.Record(int64(s.clk.Now()), flight.EvWALFold, int64(foldBase), int64(foldFrames), 0, "")
	}
	s.persistFlight()
	s.mu.Lock()
	defer s.mu.Unlock()
	sw := clock.StartStopwatch(s.clk)
	cur := s.curEpoch()
	st := CheckpointStats{Epoch: cur}
	commitSpan := s.tr.Begin(trace.TrackObjstore, "commit")
	metaSpan := commitSpan.Child("meta")

	// 1. Flush dirty chunks and records of dirty objects, in OID (and
	// chunk-index) order: a given logical state must always produce the
	// identical submit sequence, because the crash-exploration harness
	// replays checkpoints by submit index.
	oids := make([]OID, 0, len(s.objects))
	for oid := range s.objects {
		oids = append(oids, oid)
	}
	sort.Slice(oids, func(i, j int) bool { return oids[i] < oids[j] })
	for _, oid := range oids {
		o := s.objects[oid]
		if !o.dirty {
			continue
		}
		st.DirtyObjects++
		for _, ci := range sortedChunkIdxs(o) {
			c := o.chunks[ci]
			if !c.dirty {
				continue
			}
			addr, err := s.allocBlock()
			if err != nil {
				return st, err
			}
			done, err := s.dev.SubmitWrite(encodeChunk(c), addr)
			if err != nil {
				return st, err
			}
			if done > s.pendingDurable {
				s.pendingDurable = done
			}
			s.retireBlock(c.addr)
			c.addr = addr
			c.dirty = false
			st.MetaBytes += BlockSize
		}
		rec := encodeRecord(o)
		if o.recordAddr != 0 {
			s.retireRun(o.recordAddr, blocksFor(o.recordLen))
		}
		addr, err := s.allocRun(blocksFor(int64(len(rec))))
		if err != nil {
			return st, err
		}
		done, err := s.dev.SubmitWrite(rec, addr)
		if err != nil {
			return st, err
		}
		if done > s.pendingDurable {
			s.pendingDurable = done
		}
		o.recordAddr = addr
		o.recordLen = int64(len(rec))
		o.dirty = false
		st.MetaBytes += int64(len(rec))
	}
	s.deleted = make(map[OID]bool)
	metaSpan.End(trace.I("dirty_objects", int64(st.DirtyObjects)), trace.I("meta_bytes", st.MetaBytes))
	idxSpan := commitSpan.Child("index")

	// 2. Build and write the index. The index's own run must be allocated
	// BEFORE the final encode: allocation can pop the freelist and advance
	// nextBlk, both of which are serialized inside the index. (Encoding
	// first and patching afterwards — the old scheme — serialized a stale
	// freelist that could still list the index's own block, letting a
	// post-recovery allocation overwrite a retained index.) A trial encode
	// sizes the run; allocation only ever shrinks the encoded state, so the
	// real index always fits and any over-allocated tail returns to the
	// metadata pool.
	trialLen := int64(len(encodeIndex(s.indexState(cur)).b)) + 4 // + CRC
	idxRun := blocksFor(trialLen)
	idxAddr, err := s.allocMetaRun(idxRun)
	if err != nil {
		return st, err
	}
	e := encodeIndex(s.indexState(cur))
	idxLen := int64(len(e.b)) + 4
	if extra := idxRun - blocksFor(idxLen); extra > 0 {
		s.metaFree = append(s.metaFree, blockRun{addr: idxAddr + blocksFor(idxLen)*BlockSize, n: extra})
		for i := blocksFor(idxLen); i < idxRun; i++ {
			delete(s.birthOf, idxAddr+i*BlockSize)
		}
	}
	idxBytes := e.seal()
	done, err := s.dev.SubmitWrite(idxBytes, idxAddr)
	if err != nil {
		return st, err
	}
	if done > s.pendingDurable {
		s.pendingDurable = done
	}
	st.MetaBytes += idxLen
	idxSpan.End(trace.I("index_bytes", idxLen))
	superSpan := commitSpan.Child("super")

	// 3. Commit: the superblock is submitted with an ordering constraint —
	// its transfer may not begin before every interval write has completed.
	// This is a real device-level barrier, not an accounting fiction: under
	// power loss a plain submit could land while a dependency on another
	// stripe member was still queued, and recovery would follow a valid
	// superblock into rolled-back metadata.
	sb := encodeSuperblock(superblock{
		epoch: cur, indexAddr: idxAddr, indexLen: idxLen,
		walBase: s.walBase, walBlocks: s.walBlocks,
	})
	slotOff := int64(s.superSlot) * BlockSize
	sbDone, err := s.dev.SubmitWriteAfter(sb, slotOff, s.pendingDurable)
	if err != nil {
		return st, err
	}
	s.superSlot = 1 - s.superSlot
	s.pendingDurable = sbDone
	superSpan.End(trace.I("epoch", int64(cur)))

	// 4. The committed checkpoint joins retained history. Its index
	// blocks are deliberately NOT deadlisted: their lifetime is implied
	// by the retained list itself (freed directly when the checkpoint is
	// released). Serializing them into the index would make the index
	// describe its own storage — self-referential metadata whose size
	// compounds every epoch.
	s.retained = append(s.retained, ckptInfo{epoch: cur, indexAddr: idxAddr, indexLen: idxLen})
	for i := int64(0); i < blocksFor(idxLen); i++ {
		delete(s.birthOf, idxAddr+i*BlockSize)
	}
	s.epoch = cur
	s.durableAt[cur] = sbDone
	s.stats.Checkpoints++
	s.stats.MetaBytes += st.MetaBytes

	// 5. Queue staged releases behind this commit's durability horizon.
	// The superblock that no longer references the released history is on
	// the wire, but a power cut before its transfer completes would recover
	// the previous index — which still needs these blocks intact. They
	// become allocatable only once virtual time passes sbDone (see
	// promoteReleasedLocked). Data blocks were already serialized into this
	// index's freelist (see indexState); index runs recycle through the
	// in-memory metadata pool as ever.
	if len(s.releasing) > 0 || len(s.releasingMeta) > 0 {
		s.releaseQ = append(s.releaseQ, stagedRelease{at: sbDone, data: s.releasing, meta: s.releasingMeta})
		s.releasing, s.releasingMeta = nil, nil
	}
	s.promoteReleasedLocked()

	// 6. This commit folds any outstanding WAL frames into base state: the
	// new index fully describes them, so their generation is dead. The head
	// reset itself is deferred until virtual time passes sbDone — a crash
	// before that instant recovers the previous superblock, whose epoch
	// still matches the old frames (see maybeResetWALLocked).
	if s.walBlocks > 0 {
		s.walPending = nil
		if s.walSeq > 0 || s.walHead > 0 {
			s.pendingWALReset = true
			s.walResetAt = sbDone
		}
		if s.walSeq > 0 {
			s.walSeq = 0
			s.walDurable = make(map[uint64]time.Duration)
			if s.tr != nil {
				s.tr.Count("objstore.wal_folds", 1)
			}
		}
	}
	s.observeDurableLocked(sbDone)

	st.DurableAt = sbDone
	st.CommitCharged = sw.Elapsed()
	if s.tr != nil {
		// The commit window stretches from submission to the superblock's
		// durability point — the drain that overlaps resumed execution.
		s.tr.Range(trace.TrackObjstore, "commit.window", commitSpan.Start(), sbDone,
			trace.I("epoch", int64(cur)))
		s.tr.Gauge("objstore.releaseq", int64(len(s.releasing))+int64(len(s.releaseQ)))
		s.tr.Count("objstore.commits", 1)
		s.tr.Count("objstore.meta_bytes", st.MetaBytes)
	}
	commitSpan.End(trace.I("meta_bytes", st.MetaBytes))
	return st, nil
}

// persistFlight serializes the flight ring into the reserved FlightOID so
// the committing checkpoint carries the event history that led up to it.
// It runs before the commit takes s.mu (PutRecord locks internally); events
// recorded during the commit itself land in the next epoch's snapshot.
func (s *Store) persistFlight() {
	if s.fl == nil {
		return
	}
	snap := s.fl.Snapshot()
	// The ring is bounded (flight.DefaultCap events, capped details), so
	// the snapshot stays an inline record — one contiguous write per epoch.
	_ = s.PutRecord(FlightOID, flight.UType, snap)
}

// indexState snapshots the allocator and object table for encoding. Staged
// released blocks are serialized as free — if this commit's superblock
// lands they are genuinely unreferenced, and if it doesn't, recovery reads
// an older index that never listed them. Requires mu.
func (s *Store) indexState(cur Epoch) *indexState {
	idx := &indexState{
		epoch:    cur,
		nextOID:  s.nextOID,
		nextBlk:  s.nextBlk,
		freelist: s.freelist,
		deadlist: s.deadlist,
		retained: s.retained,
	}
	if len(s.releasing) > 0 || len(s.releaseQ) > 0 {
		// Queued and currently-staged released data blocks are free in this
		// epoch's view (its retained list omits the history that held them),
		// even though the in-memory allocator cannot touch them yet.
		fl := make([]int64, 0, len(s.freelist)+len(s.releasing))
		fl = append(fl, s.freelist...)
		for _, q := range s.releaseQ {
			fl = append(fl, q.data...)
		}
		idx.freelist = append(fl, s.releasing...)
	}
	oids := make([]OID, 0, len(s.objects))
	for oid := range s.objects {
		oids = append(oids, oid)
	}
	sort.Slice(oids, func(i, j int) bool { return oids[i] < oids[j] })
	for _, oid := range oids {
		o := s.objects[oid]
		idx.objects = append(idx.objects, indexEntry{oid: oid, addr: o.recordAddr, len: o.recordLen})
	}
	return idx
}

// WaitDurable blocks (in virtual time) until epoch's commit is durable.
func (s *Store) WaitDurable(epoch Epoch) error {
	s.mu.Lock()
	t, ok := s.durableAt[epoch]
	first := false
	if ok && !s.settled[epoch] {
		s.settled[epoch] = true
		first = true
	}
	s.mu.Unlock()
	if !ok {
		return fmt.Errorf("%w: %d", ErrNoEpoch, epoch)
	}
	s.dev.WaitUntil(t)
	if first {
		s.fl.Record(int64(s.clk.Now()), flight.EvDevSettle, int64(epoch), int64(t), 0, "")
	}
	// Waiting past a folding commit's superblock completes its deferred WAL
	// head reset — callers that barrier on the fold see the log reclaimed.
	s.mu.Lock()
	s.maybeResetWALLocked()
	s.mu.Unlock()
	return nil
}

// DurableAt returns the virtual time epoch became durable.
func (s *Store) DurableAt(epoch Epoch) (time.Duration, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	t, ok := s.durableAt[epoch]
	return t, ok
}

// readSuperblocks picks the valid superblock with the highest epoch,
// returning it and its slot.
func (s *Store) readSuperblocks() (superblock, int, error) {
	var best superblock
	slot := -1
	buf := make([]byte, BlockSize)
	for i := 0; i < 2; i++ {
		if _, err := s.dev.ReadAt(buf, int64(i)*BlockSize); err != nil {
			return superblock{}, 0, err
		}
		if sb, ok := decodeSuperblock(buf); ok && (slot == -1 || sb.epoch > best.epoch) {
			best, slot = sb, i
		}
	}
	if slot == -1 {
		return superblock{}, 0, fmt.Errorf("%w: no valid superblock", ErrCorrupt)
	}
	return best, slot, nil
}

// loadIndex replaces the store's live state with the index at addr.
// Requires the caller to hold no references into the old state.
func (s *Store) loadIndex(addr, length int64) error {
	idx, err := s.fetchIndex(addr, length)
	if err != nil {
		return err
	}
	s.nextOID = idx.nextOID
	s.nextBlk = idx.nextBlk
	s.freelist = idx.freelist
	s.deadlist = idx.deadlist
	s.retained = append(idx.retained, ckptInfo{epoch: idx.epoch, indexAddr: addr, indexLen: length})
	s.objects = make(map[OID]*object, len(idx.objects))
	for _, ent := range idx.objects {
		o, err := s.fetchRecord(ent.addr, ent.len)
		if err != nil {
			return err
		}
		o.recordAddr = ent.addr
		o.recordLen = ent.len
		s.objects[o.oid] = o
	}
	return nil
}

// fetchIndex reads and decodes an index.
func (s *Store) fetchIndex(addr, length int64) (*indexState, error) {
	buf := make([]byte, length)
	if _, err := s.dev.ReadAt(buf, addr); err != nil {
		return nil, err
	}
	return decodeIndex(buf)
}

// fetchRecord reads and decodes an object record.
func (s *Store) fetchRecord(addr, length int64) (*object, error) {
	buf := make([]byte, length)
	if _, err := s.dev.ReadAt(buf, addr); err != nil {
		return nil, err
	}
	return decodeRecord(buf)
}

// View is a read-only image of one retained checkpoint, used for restoring
// history ("sls restore" of a named checkpoint, time-travel debugging).
type View struct {
	s       *Store
	epoch   Epoch
	objects map[OID]*object
}

// RestoreView opens a read-only view of epoch. The current epoch and any
// retained epoch are viewable.
func (s *Store) RestoreView(epoch Epoch) (*View, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	var info *ckptInfo
	for i := range s.retained {
		if s.retained[i].epoch == epoch {
			info = &s.retained[i]
			break
		}
	}
	if info == nil {
		return nil, fmt.Errorf("%w: %d", ErrNoEpoch, epoch)
	}
	idx, err := s.fetchIndex(info.indexAddr, info.indexLen)
	if err != nil {
		return nil, err
	}
	v := &View{s: s, epoch: epoch, objects: make(map[OID]*object, len(idx.objects))}
	for _, ent := range idx.objects {
		o, err := s.fetchRecord(ent.addr, ent.len)
		if err != nil {
			return nil, err
		}
		v.objects[o.oid] = o
	}
	return v, nil
}

// Epoch returns the epoch the view images.
func (v *View) Epoch() Epoch { return v.epoch }

// Objects lists OIDs present in the view.
func (v *View) Objects() []OID {
	out := make([]OID, 0, len(v.objects))
	for oid := range v.objects {
		out = append(out, oid)
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j-1] > out[j]; j-- {
			out[j-1], out[j] = out[j], out[j-1]
		}
	}
	return out
}

// Exists reports whether oid existed at the view's epoch.
func (v *View) Exists(oid OID) bool {
	_, ok := v.objects[oid]
	return ok
}

// UType returns oid's type tag at the view's epoch.
func (v *View) UType(oid OID) (uint16, error) {
	o, ok := v.objects[oid]
	if !ok {
		return 0, fmt.Errorf("%w: %d", ErrNoObject, oid)
	}
	return o.utype, nil
}

// Size returns oid's size at the view's epoch.
func (v *View) Size(oid OID) (int64, error) {
	o, ok := v.objects[oid]
	if !ok {
		return 0, fmt.Errorf("%w: %d", ErrNoObject, oid)
	}
	return o.size, nil
}

// GetRecord returns oid's full content at the view's epoch.
func (v *View) GetRecord(oid OID) ([]byte, error) {
	o, ok := v.objects[oid]
	if !ok {
		return nil, fmt.Errorf("%w: %d", ErrNoObject, oid)
	}
	if o.journal != nil {
		return nil, ErrIsJournal
	}
	if o.chunks == nil {
		return append([]byte(nil), o.inline...), nil
	}
	out := make([]byte, o.size)
	v.s.mu.Lock()
	defer v.s.mu.Unlock()
	if err := v.s.readRangeLocked(o, 0, out); err != nil {
		return nil, err
	}
	return out, nil
}

// DiffPages reports the page indexes of oid whose stored block differs
// between retained epoch old and the current committed state — the changed
// set a pre-copy migration round must resend. An object absent at the old
// epoch diffs in full.
func (s *Store) DiffPages(oid OID, old Epoch) ([]int64, error) {
	v, err := s.RestoreView(old)
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	cur, err := s.lookup(oid)
	if err != nil {
		s.mu.Unlock()
		return nil, err
	}
	oldObj := v.objects[oid]
	// Collect the union of chunk indexes.
	cis := make(map[int64]bool)
	for ci := range cur.chunks {
		cis[ci] = true
	}
	if oldObj != nil {
		for ci := range oldObj.chunks {
			cis[ci] = true
		}
	}
	// Walk chunks in sorted order: the per-chunk loadChunk reads must hit
	// the device (and the trace) in a deterministic sequence.
	cidxs := make([]int64, 0, len(cis))
	for ci := range cis {
		cidxs = append(cidxs, ci)
	}
	sortInt64s(cidxs)
	var out []int64
	for _, ci := range cidxs {
		curC, err := s.loadChunk(cur, ci*ChunkFanout, false)
		if err != nil {
			s.mu.Unlock()
			return nil, err
		}
		var oldC *chunk
		if oldObj != nil {
			oldC, err = s.loadChunk(oldObj, ci*ChunkFanout, false)
			if err != nil {
				s.mu.Unlock()
				return nil, err
			}
		}
		for slot := int64(0); slot < ChunkFanout; slot++ {
			var ca, oa int64
			if curC != nil {
				ca = curC.addrs[slot]
			}
			if oldC != nil {
				oa = oldC.addrs[slot]
			}
			if ca != oa && ca != 0 {
				out = append(out, ci*ChunkFanout+slot)
			}
		}
	}
	s.mu.Unlock()
	sortInt64s(out)
	return out, nil
}

// EachPageBulk streams every present page of oid at the view's epoch,
// charging pipelined bandwidth (the eager history-restore path).
func (v *View) EachPageBulk(oid OID, fn func(pg int64, data []byte) error) (int64, error) {
	o, ok := v.objects[oid]
	if !ok {
		return 0, fmt.Errorf("%w: %d", ErrNoObject, oid)
	}
	return v.s.eachPageBulkObj(o, fn)
}

// HasPage reports whether oid stored page pg at the view's epoch.
func (v *View) HasPage(oid OID, pg int64) (bool, error) {
	o, ok := v.objects[oid]
	if !ok {
		return false, fmt.Errorf("%w: %d", ErrNoObject, oid)
	}
	v.s.mu.Lock()
	defer v.s.mu.Unlock()
	return v.s.hasPageLocked(o, pg)
}

// PageSum returns the committed CRC32 of oid's page pg at the view's
// epoch (see Store.PageSum). ok is false for holes and inline objects.
func (v *View) PageSum(oid OID, pg int64) (uint32, bool, error) {
	o, ok := v.objects[oid]
	if !ok {
		return 0, false, fmt.Errorf("%w: %d", ErrNoObject, oid)
	}
	v.s.mu.Lock()
	defer v.s.mu.Unlock()
	return v.s.pageSumLocked(o, pg)
}

// ReadPage reads one page of oid at the view's epoch.
func (v *View) ReadPage(oid OID, pg int64, buf []byte) (bool, error) {
	o, ok := v.objects[oid]
	if !ok {
		return false, fmt.Errorf("%w: %d", ErrNoObject, oid)
	}
	if o.journal != nil {
		return false, ErrIsJournal
	}
	if o.chunks == nil {
		for i := range buf {
			buf[i] = 0
		}
		off := pg * BlockSize
		if off < int64(len(o.inline)) {
			copy(buf, o.inline[off:])
			return true, nil
		}
		return false, nil
	}
	v.s.mu.Lock()
	defer v.s.mu.Unlock()
	return v.s.readPageLocked(o, pg, buf)
}
