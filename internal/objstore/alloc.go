package objstore

// Block allocation. The store uses a bump pointer plus a freelist refilled
// by the deadlist scan. COW means a block is never rewritten once it holds
// committed data; blocks become reusable only when no retained checkpoint
// can still see them.

// promoteReleasedLocked moves queued releases whose omitting superblock
// has completed (virtual time passed its transfer) into the allocatable
// pools. Before that instant a power cut could still recover the index
// that references them, so the allocator must not hand them out. Queue
// entries carry monotonically increasing stamps, so a prefix scan
// suffices. Requires mu.
func (s *Store) promoteReleasedLocked() {
	now := s.clk.Now()
	i := 0
	for ; i < len(s.releaseQ) && s.releaseQ[i].at <= now; i++ {
		s.freelist = append(s.freelist, s.releaseQ[i].data...)
		s.metaFree = append(s.metaFree, s.releaseQ[i].meta...)
	}
	if i > 0 {
		s.releaseQ = append(s.releaseQ[:0], s.releaseQ[i:]...)
	}
}

// allocBlock returns one free block address born in the current interval.
// Requires mu.
func (s *Store) allocBlock() (int64, error) {
	s.promoteReleasedLocked()
	if n := len(s.freelist); n > 0 {
		a := s.freelist[n-1]
		s.freelist = s.freelist[:n-1]
		s.stats.BlocksAllocated++
		s.birthOf[a] = s.curEpoch()
		return a, nil
	}
	a := s.nextBlk * BlockSize
	if a+BlockSize > s.dev.Size() {
		return 0, ErrFull
	}
	s.nextBlk++
	s.stats.BlocksAllocated++
	s.birthOf[a] = s.curEpoch()
	return a, nil
}

// allocRun returns n contiguous blocks (needed for multi-block records and
// journal extents). Contiguity comes from the bump region, but single-block
// runs recycle through the freelist like any block — otherwise a
// long-running store's per-checkpoint metadata (records, indexes) would
// only ever bump while their freed predecessors pile up in the freelist,
// which is itself serialized into every index: the store would grow
// quadratically while idle. Requires mu.
func (s *Store) allocRun(n int64) (int64, error) {
	if n == 1 {
		return s.allocBlock()
	}
	a := s.nextBlk * BlockSize
	if a+n*BlockSize > s.dev.Size() {
		return 0, ErrFull
	}
	s.nextBlk += n
	s.stats.BlocksAllocated += n
	for i := int64(0); i < n; i++ {
		s.birthOf[a+i*BlockSize] = s.curEpoch()
	}
	return a, nil
}

// allocMetaRun returns n contiguous blocks for checkpoint indexes,
// preferring the recycled metadata pool over the bump region. Requires mu.
func (s *Store) allocMetaRun(n int64) (int64, error) {
	s.promoteReleasedLocked()
	for i, r := range s.metaFree {
		if r.n >= n {
			addr := r.addr
			if r.n == n {
				s.metaFree = append(s.metaFree[:i], s.metaFree[i+1:]...)
			} else {
				s.metaFree[i] = blockRun{addr: r.addr + n*BlockSize, n: r.n - n}
			}
			s.stats.BlocksAllocated += n
			for j := int64(0); j < n; j++ {
				s.birthOf[addr+j*BlockSize] = s.curEpoch()
			}
			return addr, nil
		}
	}
	return s.allocRun(n)
}

// retireBlock marks a block superseded during the current interval. Blocks
// born and retired within the same interval are immediately reusable — this
// is the property that keeps the store free of a garbage-collection pass.
// Blocks born in earlier (committed) epochs join the deadlist and are
// reclaimed once no retained checkpoint can see them. Requires mu.
func (s *Store) retireBlock(addr int64) {
	if addr == 0 {
		return
	}
	birth, ok := s.birthOf[addr]
	if ok {
		delete(s.birthOf, addr)
	}
	cur := s.curEpoch()
	if birth == cur {
		if s.walSeq > 0 || s.replaying {
			// A committed WAL frame of this interval may reference the
			// block: until the fold's superblock is durable, replaying that
			// frame needs it intact. Stage it like a release — serialized
			// as free in the folding index, allocatable only once the fold
			// can no longer be rolled back by a crash.
			s.releasing = append(s.releasing, addr)
		} else {
			// Never visible to any checkpoint: reuse at once.
			s.freelist = append(s.freelist, addr)
		}
		s.stats.BlocksFreed++
		return
	}
	s.deadlist = append(s.deadlist, deadBlock{addr: addr, birth: birth, freedAt: cur})
}

// retireRun retires n consecutive blocks starting at addr. Requires mu.
func (s *Store) retireRun(addr, n int64) {
	for i := int64(0); i < n; i++ {
		s.retireBlock(addr + i*BlockSize)
	}
}

// sweepDeadlist moves deadlist entries no retained checkpoint can see into
// the release stage; they become allocatable once the next commit is
// durable. Requires mu.
func (s *Store) sweepDeadlist() int {
	if len(s.deadlist) == 0 {
		return 0
	}
	// A block with lifetime [birth, freedAt) is still needed iff some
	// retained checkpoint epoch R satisfies birth <= R < freedAt. The live
	// table never references deadlist blocks, so the current epoch is not
	// a holder.
	retained := make([]Epoch, 0, len(s.retained))
	for _, c := range s.retained {
		retained = append(retained, c.epoch)
	}
	freed := 0
	kept := s.deadlist[:0]
	for _, db := range s.deadlist {
		held := false
		for _, r := range retained {
			if r >= db.birth && r < db.freedAt {
				held = true
				break
			}
		}
		if held {
			kept = append(kept, db)
		} else {
			s.releasing = append(s.releasing, db.addr)
			s.stats.BlocksFreed++
			freed++
		}
	}
	s.deadlist = kept
	return freed
}

// ReleaseCheckpointsBefore drops history older than epoch and reclaims any
// blocks only that history held — including the released checkpoints' own
// index blocks, whose lifetime is implied by the retained list rather than
// recorded in the deadlist. It returns the number of blocks freed.
//
// The reclaimed blocks are NOT allocatable immediately: until the next
// superblock is durable, a crash still recovers an index that references
// the released history. Frees therefore stage in releasing/releasingMeta,
// move to releaseQ at the next commit, and are promoted once virtual time
// passes that commit's superblock completion. The most recent checkpoint
// can never be released.
func (s *Store) ReleaseCheckpointsBefore(epoch Epoch) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	freed := 0
	kept := s.retained[:0]
	for _, c := range s.retained {
		if c.epoch >= epoch || c.epoch == s.epoch {
			kept = append(kept, c)
			continue
		}
		// Index runs recycle through the in-memory metadata pool, never
		// the serialized freelist (see metaFree).
		s.releasingMeta = append(s.releasingMeta, blockRun{addr: c.indexAddr, n: blocksFor(c.indexLen)})
		s.stats.BlocksFreed += blocksFor(c.indexLen)
		freed += int(blocksFor(c.indexLen))
		delete(s.durableAt, c.epoch)
	}
	s.retained = kept
	return freed + s.sweepDeadlist()
}

// RetainedCheckpoints lists the epochs whose full state remains restorable.
func (s *Store) RetainedCheckpoints() []Epoch {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Epoch, len(s.retained))
	for i, c := range s.retained {
		out[i] = c.epoch
	}
	return out
}

// FreeBlocks reports the current freelist length (for tests and tooling).
func (s *Store) FreeBlocks() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.promoteReleasedLocked()
	return len(s.freelist)
}

// DeadBlocks reports the deadlist length (for tests and tooling).
func (s *Store) DeadBlocks() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.deadlist)
}
