package objstore

import (
	"fmt"
	"sort"
)

// AuditLive checks the store's in-memory structures against each other —
// the free map versus allocated extents, retained-checkpoint ordering,
// durability monotonicity — and returns one message per violation. Unlike
// Fsck, which reads the committed on-device state, AuditLive inspects the
// running store without IO, so the invariant watchdog can call it on a
// cadence. An empty result means every rule held.
func (s *Store) AuditLive() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	var problems []string
	prob := func(format string, args ...any) {
		problems = append(problems, "store: "+fmt.Sprintf(format, args...))
	}

	// Claim map: every block that live metadata says it owns, claimed at
	// most once, inside the device, and off the superblocks. Data blocks
	// referenced from uncached block-map chunks are Fsck's job (reading
	// them here would cost IO); everything resident is cross-checked.
	limit := s.dev.Size()
	dataStart := s.dataStart()
	claimed := make(map[int64]string)
	claim := func(addr, n int64, what string) {
		if addr < dataStart || addr%BlockSize != 0 || addr+n*BlockSize > limit {
			prob("%s claims out-of-range run [%d,+%d blocks)", what, addr, n)
			return
		}
		for i := int64(0); i < n; i++ {
			blk := addr + i*BlockSize
			if prev, ok := claimed[blk]; ok {
				prob("block %d claimed by both %s and %s", blk, prev, what)
				return
			}
			claimed[blk] = what
		}
	}

	oids := make([]OID, 0, len(s.objects))
	for oid := range s.objects {
		oids = append(oids, oid)
	}
	sort.Slice(oids, func(i, j int) bool { return oids[i] < oids[j] })
	for _, oid := range oids {
		o := s.objects[oid]
		if o.recordAddr != 0 {
			claim(o.recordAddr, blocksFor(o.recordLen), fmt.Sprintf("record of oid %d", oid))
		}
		if o.journal != nil {
			claim(o.journal.extentAddr, o.journal.capBlocks, fmt.Sprintf("journal extent of oid %d", oid))
		}
		for _, ci := range sortedChunkIdxs(o) {
			if c := o.chunks[ci]; c.addr != 0 {
				claim(c.addr, 1, fmt.Sprintf("chunk %d of oid %d", ci, oid))
			}
		}
		if o.size < 0 {
			prob("oid %d has negative size %d", oid, o.size)
		}
	}

	for i, ck := range s.retained {
		claim(ck.indexAddr, blocksFor(ck.indexLen), fmt.Sprintf("index of epoch %d", ck.epoch))
		if i > 0 && ck.epoch <= s.retained[i-1].epoch {
			prob("retained epochs out of order: %d then %d", s.retained[i-1].epoch, ck.epoch)
		}
	}
	if n := len(s.retained); n > 0 && s.retained[n-1].epoch != s.epoch {
		prob("newest retained epoch %d != committed epoch %d", s.retained[n-1].epoch, s.epoch)
	}

	// The free map must not alias anything live metadata owns.
	for _, a := range s.freelist {
		claim(a, 1, "freelist")
	}
	for _, r := range s.metaFree {
		claim(r.addr, r.n, "metadata pool")
	}
	for _, a := range s.releasing {
		claim(a, 1, "staged release")
	}
	for qi, q := range s.releaseQ {
		for _, a := range q.data {
			claim(a, 1, "release queue")
		}
		for _, r := range q.meta {
			claim(r.addr, r.n, "release queue (meta)")
		}
		if qi > 0 && q.at < s.releaseQ[qi-1].at {
			prob("release queue stamps out of order at entry %d", qi)
		}
	}

	// Deadlist entries are history-only: superseded blocks some retained
	// checkpoint may still see, never referenced by the live table above.
	for _, db := range s.deadlist {
		claim(db.addr, 1, "deadlist")
		if db.birth >= db.freedAt {
			prob("deadlist block %d has lifetime [%d,%d)", db.addr, db.birth, db.freedAt)
		}
	}

	// Durability times must be monotone in epoch: a later checkpoint can
	// never become durable before an earlier one (SubmitWriteAfter orders
	// every superblock behind its interval).
	epochs := make([]Epoch, 0, len(s.durableAt))
	for e := range s.durableAt {
		epochs = append(epochs, e)
	}
	sort.Slice(epochs, func(i, j int) bool { return epochs[i] < epochs[j] })
	for i := 1; i < len(epochs); i++ {
		if s.durableAt[epochs[i]] < s.durableAt[epochs[i-1]] {
			prob("epoch %d durable at %v before epoch %d at %v",
				epochs[i], s.durableAt[epochs[i]], epochs[i-1], s.durableAt[epochs[i-1]])
		}
	}
	if len(epochs) > 0 && epochs[len(epochs)-1] > s.epoch {
		prob("durability recorded for uncommitted epoch %d (committed %d)", epochs[len(epochs)-1], s.epoch)
	}

	if s.nextBlk*BlockSize > limit {
		prob("bump pointer %d beyond device (%d blocks)", s.nextBlk, limit/BlockSize)
	}
	if s.nextBlk*BlockSize < dataStart {
		prob("bump pointer %d inside reserved region (data starts at block %d)",
			s.nextBlk, dataStart/BlockSize)
	}

	// WAL ring geometry: the head stays inside the reserved region on a
	// sector boundary, and committed frames imply a nonzero head.
	if s.walBlocks > 0 {
		if s.walHead < 0 || s.walHead > s.walBlocks*BlockSize {
			prob("wal head %d outside region of %d blocks", s.walHead, s.walBlocks)
		}
		if s.walHead%walSector != 0 {
			prob("wal head %d not sector aligned", s.walHead)
		}
		if s.walSeq > 0 && s.walHead == 0 {
			prob("wal seq %d with empty ring", s.walSeq)
		}
	}
	return problems
}
