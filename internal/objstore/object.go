package objstore

import (
	"fmt"
	"hash/crc32"
	"time"
)

// Object data paths. Small POSIX-object state lives inline in records;
// memory and file objects store page-granularity blocks reached through
// block-map chunks. All writes are copy-on-write and asynchronous: data is
// submitted to the device immediately and the interval's commit waits for
// durability.

// PutRecord replaces oid's content with data, creating the object if needed.
// Payloads up to InlineMax stay inline in the object record (one metadata
// write at checkpoint time); larger payloads spill to data blocks.
func (s *Store) PutRecord(oid OID, utype uint16, data []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	o := s.ensure(oid, utype)
	if o.journal != nil {
		return ErrIsJournal
	}
	o.utype = utype
	if len(data) <= InlineMax {
		s.dropChunks(o)
		o.inline = append(o.inline[:0], data...)
		o.size = int64(len(data))
		s.walNote(walOp{kind: walOpPut, oid: oid, utype: utype, data: append([]byte(nil), data...)})
		return nil
	}
	o.inline = nil
	if err := s.writeRangeLocked(o, 0, data); err != nil {
		return err
	}
	if err := s.truncateLocked(o, int64(len(data))); err != nil {
		return err
	}
	s.walNote(walOp{kind: walOpSize, oid: oid, size: o.size})
	return nil
}

// GetRecord returns the full content of oid.
func (s *Store) GetRecord(oid OID) ([]byte, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	o, err := s.lookup(oid)
	if err != nil {
		return nil, err
	}
	if o.journal != nil {
		return nil, ErrIsJournal
	}
	if o.chunks == nil {
		return append([]byte(nil), o.inline...), nil
	}
	out := make([]byte, o.size)
	if err := s.readRangeLocked(o, 0, out); err != nil {
		return nil, err
	}
	return out, nil
}

// Ensure creates oid as an empty paged object if it does not exist.
func (s *Store) Ensure(oid OID, utype uint16) {
	s.mu.Lock()
	defer s.mu.Unlock()
	_, existed := s.objects[oid]
	s.ensure(oid, utype)
	if !existed {
		s.walNote(walOp{kind: walOpPut, oid: oid, utype: utype})
	}
}

// Exists reports whether oid is live.
func (s *Store) Exists(oid OID) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	_, ok := s.objects[oid]
	return ok
}

// UType returns the user type tag of oid.
func (s *Store) UType(oid OID) (uint16, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	o, err := s.lookup(oid)
	if err != nil {
		return 0, err
	}
	return o.utype, nil
}

// Size returns the byte size of oid.
func (s *Store) Size(oid OID) (int64, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	o, err := s.lookup(oid)
	if err != nil {
		return 0, err
	}
	return o.size, nil
}

// toPaged converts an inline object to paged form. Requires mu.
func (s *Store) toPaged(o *object) error {
	if o.chunks != nil {
		return nil
	}
	inline := o.inline
	o.inline = nil
	o.chunks = make(map[int64]*chunk)
	if len(inline) > 0 {
		return s.writeRangeLocked(o, 0, inline)
	}
	return nil
}

// loadChunk returns the chunk covering page index pg, faulting it from the
// device if needed; creates it when create is set. Requires mu.
func (s *Store) loadChunk(o *object, pg int64, create bool) (*chunk, error) {
	ci := pg / ChunkFanout
	c, ok := o.chunks[ci]
	if !ok {
		if !create {
			return nil, nil
		}
		c = &chunk{loaded: true}
		o.chunks[ci] = c
		return c, nil
	}
	if !c.loaded {
		buf := make([]byte, BlockSize)
		if _, err := s.dev.ReadAt(buf, c.addr); err != nil {
			return nil, err
		}
		if err := decodeChunk(c, buf); err != nil {
			return nil, fmt.Errorf("oid %d chunk %d at %#x: %w", o.oid, ci, c.addr, err)
		}
	}
	return c, nil
}

// WritePage writes one whole page (BlockSize bytes) at page index pg. The
// write is COW: a fresh block is allocated and the old block, if any, is
// retired. The device transfer is asynchronous.
func (s *Store) WritePage(oid OID, pg int64, data []byte) error {
	if len(data) != BlockSize {
		return fmt.Errorf("objstore: WritePage wants %d bytes, got %d", BlockSize, len(data))
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	o, err := s.lookup(oid)
	if err != nil {
		return err
	}
	if o.journal != nil {
		return ErrIsJournal
	}
	if err := s.toPaged(o); err != nil {
		return err
	}
	o.dirty = true
	if end := (pg + 1) * BlockSize; end > o.size {
		o.size = end
	}
	if err := s.writePageLocked(o, pg, data); err != nil {
		return err
	}
	s.walNote(walOp{kind: walOpSize, oid: oid, size: o.size})
	return nil
}

// writePageLocked is the COW page write. Requires mu.
func (s *Store) writePageLocked(o *object, pg int64, data []byte) error {
	c, err := s.loadChunk(o, pg, true)
	if err != nil {
		return err
	}
	slot := pg % ChunkFanout
	addr, err := s.allocBlock()
	if err != nil {
		return err
	}
	done, err := s.dev.SubmitWrite(data, addr)
	if err != nil {
		return err
	}
	if done > s.pendingDurable {
		s.pendingDurable = done
	}
	s.retireBlock(c.addrs[slot])
	c.addrs[slot] = addr
	c.sums[slot] = crc32.ChecksumIEEE(data)
	c.dirty = true
	o.dirty = true
	s.stats.DataBytes += BlockSize
	s.walNote(walOp{kind: walOpPage, oid: o.oid, utype: o.utype, pg: pg, addr: addr, sum: c.sums[slot]})
	return nil
}

// ReadPage reads page pg of oid into buf (BlockSize bytes). It returns false
// with no error when the page is a hole.
func (s *Store) ReadPage(oid OID, pg int64, buf []byte) (bool, error) {
	if len(buf) != BlockSize {
		return false, fmt.Errorf("objstore: ReadPage wants %d bytes, got %d", BlockSize, len(buf))
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	o, err := s.lookup(oid)
	if err != nil {
		return false, err
	}
	if o.journal != nil {
		return false, ErrIsJournal
	}
	if o.chunks == nil {
		// Inline object: synthesize the page view.
		for i := range buf {
			buf[i] = 0
		}
		off := pg * BlockSize
		if off < int64(len(o.inline)) {
			copy(buf, o.inline[off:])
			return true, nil
		}
		return false, nil
	}
	return s.readPageLocked(o, pg, buf)
}

// readPageLocked requires mu.
func (s *Store) readPageLocked(o *object, pg int64, buf []byte) (bool, error) {
	c, err := s.loadChunk(o, pg, false)
	if err != nil {
		return false, err
	}
	if c == nil || c.addrs[pg%ChunkFanout] == 0 {
		for i := range buf {
			buf[i] = 0
		}
		return false, nil
	}
	if _, err := s.dev.ReadAt(buf, c.addrs[pg%ChunkFanout]); err != nil {
		return false, err
	}
	return true, nil
}

// HasPage reports whether oid stores page pg (without reading the data).
func (s *Store) HasPage(oid OID, pg int64) (bool, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	o, err := s.lookup(oid)
	if err != nil {
		return false, err
	}
	return s.hasPageLocked(o, pg)
}

// hasPageLocked requires mu.
func (s *Store) hasPageLocked(o *object, pg int64) (bool, error) {
	if o.journal != nil {
		return false, ErrIsJournal
	}
	if o.chunks == nil {
		return pg*BlockSize < int64(len(o.inline)), nil
	}
	c, err := s.loadChunk(o, pg, false)
	if err != nil {
		return false, err
	}
	return c != nil && c.addrs[pg%ChunkFanout] != 0, nil
}

// PageSum returns the CRC32 recorded when oid's page pg was committed —
// the validator's ground truth for speculative restore: a speculated page
// is confirmed by hashing what the group faulted in and comparing against
// this sum, without trusting (or re-reading) the data path that produced
// it. ok is false for holes and for inline objects, which carry no
// per-page sums; those pages are validated by content instead.
func (s *Store) PageSum(oid OID, pg int64) (sum uint32, ok bool, err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	o, err := s.lookup(oid)
	if err != nil {
		return 0, false, err
	}
	return s.pageSumLocked(o, pg)
}

// pageSumLocked requires mu.
func (s *Store) pageSumLocked(o *object, pg int64) (uint32, bool, error) {
	if o.journal != nil {
		return 0, false, ErrIsJournal
	}
	if o.chunks == nil {
		return 0, false, nil
	}
	c, err := s.loadChunk(o, pg, false)
	if err != nil {
		return 0, false, err
	}
	if c == nil || c.addrs[pg%ChunkFanout] == 0 {
		return 0, false, nil
	}
	return c.sums[pg%ChunkFanout], true, nil
}

// WriteAt writes a byte range, performing read-modify-write at page edges.
func (s *Store) WriteAt(oid OID, off int64, data []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	o, err := s.lookup(oid)
	if err != nil {
		return err
	}
	if o.journal != nil {
		return ErrIsJournal
	}
	if err := s.toPaged(o); err != nil {
		return err
	}
	if err := s.writeRangeLocked(o, off, data); err != nil {
		return err
	}
	if end := off + int64(len(data)); end > o.size {
		o.size = end
	}
	o.dirty = true
	s.walNote(walOp{kind: walOpSize, oid: oid, size: o.size})
	return nil
}

// writeRangeLocked requires mu and a paged (or being-paged) object.
func (s *Store) writeRangeLocked(o *object, off int64, data []byte) error {
	if o.chunks == nil {
		o.chunks = make(map[int64]*chunk)
	}
	page := make([]byte, BlockSize)
	for len(data) > 0 {
		pg := off / BlockSize
		in := off % BlockSize
		run := BlockSize - in
		if run > int64(len(data)) {
			run = int64(len(data))
		}
		if in != 0 || run != BlockSize {
			if _, err := s.readPageLocked(o, pg, page); err != nil {
				return err
			}
		} else {
			for i := range page {
				page[i] = 0
			}
		}
		copy(page[in:], data[:run])
		if err := s.writePageLocked(o, pg, page); err != nil {
			return err
		}
		data = data[run:]
		off += run
	}
	return nil
}

// ReadAt reads a byte range of oid into buf, zero-filling holes. Reads past
// the object size are truncated; n reports bytes read.
func (s *Store) ReadAt(oid OID, off int64, buf []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	o, err := s.lookup(oid)
	if err != nil {
		return 0, err
	}
	if o.journal != nil {
		return 0, ErrIsJournal
	}
	if off >= o.size {
		return 0, nil
	}
	if max := o.size - off; int64(len(buf)) > max {
		buf = buf[:max]
	}
	if o.chunks == nil {
		n := 0
		if off < int64(len(o.inline)) {
			n = copy(buf, o.inline[off:])
		}
		for i := n; i < len(buf); i++ {
			buf[i] = 0
		}
		return len(buf), nil
	}
	if err := s.readRangeLocked(o, off, buf); err != nil {
		return 0, err
	}
	return len(buf), nil
}

// readRangeLocked reads a byte range with pipelined block reads: the
// command latency is paid once per range, not once per page (a multi-page
// file read behaves like a queued sequential read, as on real NVMe).
// Requires mu.
func (s *Store) readRangeLocked(o *object, off int64, buf []byte) error {
	page := make([]byte, BlockSize)
	var last time.Duration
	for len(buf) > 0 {
		pg := off / BlockSize
		in := off % BlockSize
		run := BlockSize - in
		if run > int64(len(buf)) {
			run = int64(len(buf))
		}
		c, err := s.loadChunk(o, pg, false)
		if err != nil {
			return err
		}
		if c == nil || c.addrs[pg%ChunkFanout] == 0 {
			for i := range page {
				page[i] = 0
			}
		} else {
			done, err := s.dev.SubmitRead(page, c.addrs[pg%ChunkFanout])
			if err != nil {
				return err
			}
			if done > last {
				last = done
			}
		}
		copy(buf[:run], page[in:])
		buf = buf[run:]
		off += run
	}
	s.dev.WaitUntil(last)
	return nil
}

// Truncate sets oid's size, retiring blocks past the end.
func (s *Store) Truncate(oid OID, size int64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	o, err := s.lookup(oid)
	if err != nil {
		return err
	}
	if o.journal != nil {
		return ErrIsJournal
	}
	o.dirty = true
	if err := s.truncateLocked(o, size); err != nil {
		return err
	}
	s.walNote(walOp{kind: walOpSize, oid: oid, size: size})
	return nil
}

// truncateLocked requires mu.
func (s *Store) truncateLocked(o *object, size int64) error {
	if o.chunks == nil {
		if size <= int64(len(o.inline)) {
			o.inline = o.inline[:size]
		} else {
			o.inline = append(o.inline, make([]byte, size-int64(len(o.inline)))...)
		}
		o.size = size
		return nil
	}
	lastPg := (size + BlockSize - 1) / BlockSize // first page index to drop
	cis := make([]int64, 0, len(o.chunks))
	for ci := range o.chunks {
		cis = append(cis, ci)
	}
	sortInt64s(cis) // retire in a fixed order: the freelist feeds the
	// deterministic submit stream the crash harness replays
	for _, ci := range cis {
		first := ci * ChunkFanout
		if first+ChunkFanout <= lastPg {
			continue
		}
		c, err := s.loadChunk(o, first, false)
		if err != nil {
			return err
		}
		if c == nil {
			continue
		}
		empty := true
		for slot := int64(0); slot < ChunkFanout; slot++ {
			pg := first + slot
			if pg >= lastPg {
				if c.addrs[slot] != 0 {
					s.retireBlock(c.addrs[slot])
					c.addrs[slot] = 0
					c.sums[slot] = 0
					c.dirty = true
				}
			} else if c.addrs[slot] != 0 {
				empty = false
			}
		}
		if empty && first >= lastPg {
			s.retireBlock(c.addr)
			delete(o.chunks, ci)
		}
	}
	// Zero the partial tail page so stale bytes never reappear on regrow.
	if in := size % BlockSize; in != 0 {
		pg := size / BlockSize
		page := make([]byte, BlockSize)
		found, err := s.readPageLocked(o, pg, page)
		if err != nil {
			return err
		}
		if found {
			for i := in; i < BlockSize; i++ {
				page[i] = 0
			}
			if err := s.writePageLocked(o, pg, page); err != nil {
				return err
			}
		}
	}
	o.size = size
	o.dirty = true
	return nil
}

// dropChunks retires all of an object's data and chunk blocks, in chunk
// order so the freelist stays deterministic. Requires mu.
func (s *Store) dropChunks(o *object) {
	cis := make([]int64, 0, len(o.chunks))
	for ci := range o.chunks {
		cis = append(cis, ci)
	}
	sortInt64s(cis)
	for _, ci := range cis {
		c := o.chunks[ci]
		if c.loaded {
			for _, a := range c.addrs {
				s.retireBlock(a)
			}
		} else if c.addr != 0 {
			// Chunk never faulted in: load addresses to retire them.
			buf := make([]byte, BlockSize)
			if _, err := s.dev.ReadAt(buf, c.addr); err == nil {
				if err := decodeChunk(c, buf); err == nil {
					for _, a := range c.addrs {
						s.retireBlock(a)
					}
				}
			}
		}
		s.retireBlock(c.addr)
		delete(o.chunks, ci)
	}
	o.chunks = nil
}

// Delete removes oid, retiring its blocks into the deadlist (they remain
// reachable through retained checkpoints until history is released).
func (s *Store) Delete(oid OID) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	o, err := s.lookup(oid)
	if err != nil {
		return err
	}
	if o.journal != nil {
		s.retireRun(o.journal.extentAddr, o.journal.capBlocks)
	}
	s.dropChunks(o)
	if o.recordAddr != 0 {
		s.retireRun(o.recordAddr, blocksFor(o.recordLen))
	}
	delete(s.objects, oid)
	s.deleted[oid] = true
	s.walNote(walOp{kind: walOpDelete, oid: oid})
	return nil
}

// EachPageBulk streams every present page of oid to fn in ascending page
// order, charging pipelined read bandwidth (one queue drain at the end)
// instead of a full command latency per page. This is the eager-restore
// read path: a 200 MiB image loads at device bandwidth.
func (s *Store) EachPageBulk(oid OID, fn func(pg int64, data []byte) error) (int64, error) {
	s.mu.Lock()
	o, err := s.lookup(oid)
	if err != nil {
		s.mu.Unlock()
		return 0, err
	}
	s.mu.Unlock()
	return s.eachPageBulkObj(o, fn)
}

// eachPageBulkObj implements the bulk walk over a live or view object.
func (s *Store) eachPageBulkObj(o *object, fn func(pg int64, data []byte) error) (int64, error) {
	s.mu.Lock()
	if o.journal != nil {
		s.mu.Unlock()
		return 0, ErrIsJournal
	}
	if o.chunks == nil {
		inline := append([]byte(nil), o.inline...)
		s.mu.Unlock()
		var n int64
		buf := make([]byte, BlockSize)
		for off := 0; off < len(inline); off += BlockSize {
			for i := range buf {
				buf[i] = 0
			}
			copy(buf, inline[off:])
			if err := fn(int64(off/BlockSize), buf); err != nil {
				return n, err
			}
			n++
		}
		return n, nil
	}
	// Collect chunk indexes; release the lock between page reads so this
	// can run concurrently with other store users.
	cis := make([]int64, 0, len(o.chunks))
	for ci := range o.chunks {
		cis = append(cis, ci)
	}
	s.mu.Unlock()
	sortInt64s(cis)

	var (
		n    int64
		last time.Duration
	)
	buf := make([]byte, BlockSize)
	for _, ci := range cis {
		s.mu.Lock()
		c, err := s.loadChunk(o, ci*ChunkFanout, false)
		if err != nil {
			s.mu.Unlock()
			return n, err
		}
		var addrs [ChunkFanout]int64
		if c != nil {
			addrs = c.addrs
		}
		s.mu.Unlock()
		for slot := int64(0); slot < ChunkFanout; slot++ {
			if addrs[slot] == 0 {
				continue
			}
			done, err := s.dev.SubmitRead(buf, addrs[slot])
			if err != nil {
				return n, err
			}
			if done > last {
				last = done
			}
			if err := fn(ci*ChunkFanout+slot, buf); err != nil {
				return n, err
			}
			n++
		}
	}
	s.dev.WaitUntil(last)
	return n, nil
}

func sortInt64s(a []int64) {
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && a[j-1] > a[j]; j-- {
			a[j-1], a[j] = a[j], a[j-1]
		}
	}
}

// blocksFor returns the block count spanning n bytes.
func blocksFor(n int64) int64 {
	if n <= 0 {
		return 0
	}
	return (n + BlockSize - 1) / BlockSize
}
