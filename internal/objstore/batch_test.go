package objstore

import (
	"bytes"
	"fmt"
	"sync"
	"testing"
)

func pageOf(oid OID, pg int64) []byte {
	p := make([]byte, BlockSize)
	for i := range p {
		p[i] = byte(int64(oid)*31 + pg + int64(i))
	}
	return p
}

// TestWritePagesMatchesWritePage: a batch must be indistinguishable from
// the equivalent WritePage sequence, including across a crash.
func TestWritePagesMatchesWritePage(t *testing.T) {
	s, dev, clk := newStore(t)
	a, b := s.NewOID(), s.NewOID()
	s.Ensure(a, 1)
	s.Ensure(b, 1)

	var writes []PageWrite
	for pg := int64(0); pg < 300; pg++ {
		writes = append(writes, PageWrite{Pg: pg * 3, Data: pageOf(a, pg*3)})
	}
	n, err := s.WritePages(a, writes)
	if err != nil {
		t.Fatal(err)
	}
	if n != 300*BlockSize {
		t.Fatalf("submitted %d bytes, want %d", n, 300*BlockSize)
	}
	for pg := int64(0); pg < 300; pg++ {
		if err := s.WritePage(b, pg*3, pageOf(a, pg*3)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}

	s2 := reopen(t, dev, clk)
	sa, _ := s2.Size(a)
	sb, _ := s2.Size(b)
	if sa != sb {
		t.Fatalf("sizes diverge: batch %d serial %d", sa, sb)
	}
	ba := make([]byte, BlockSize)
	bb := make([]byte, BlockSize)
	for pg := int64(0); pg < 900; pg++ {
		oka, err := s2.ReadPage(a, pg, ba)
		if err != nil {
			t.Fatal(err)
		}
		okb, err := s2.ReadPage(b, pg, bb)
		if err != nil {
			t.Fatal(err)
		}
		if oka != okb || !bytes.Equal(ba, bb) {
			t.Fatalf("page %d diverges (present %v/%v)", pg, oka, okb)
		}
	}
}

// TestWritePagesConcurrent hammers the batch path from many goroutines —
// one per destination object, as the flush pipeline does — racing readers
// of already-committed objects. Run under -race.
func TestWritePagesConcurrent(t *testing.T) {
	s, dev, clk := newStore(t)
	const objs = 8
	const pages = 400

	oids := make([]OID, objs)
	for i := range oids {
		oids[i] = s.NewOID()
		s.Ensure(oids[i], 1)
	}
	// Seed object 0 with committed content for the readers.
	for pg := int64(0); pg < pages; pg++ {
		if err := s.WritePage(oids[0], pg, pageOf(oids[0], pg)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	errs := make(chan error, objs+2)
	for i := 1; i < objs; i++ {
		wg.Add(1)
		go func(oid OID) {
			defer wg.Done()
			var writes []PageWrite
			for pg := int64(0); pg < pages; pg++ {
				writes = append(writes, PageWrite{Pg: pg, Data: pageOf(oid, pg)})
			}
			if _, err := s.WritePages(oid, writes); err != nil {
				errs <- err
			}
		}(oids[i])
	}
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			buf := make([]byte, BlockSize)
			for i := 0; i < 200; i++ {
				pg := int64(i % pages)
				ok, err := s.ReadPage(oids[0], pg, buf)
				if err != nil {
					errs <- err
					return
				}
				if !ok || !bytes.Equal(buf, pageOf(oids[0], pg)) {
					errs <- fmt.Errorf("reader saw torn page %d", pg)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	if _, err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	s2 := reopen(t, dev, clk)
	buf := make([]byte, BlockSize)
	for _, oid := range oids {
		for pg := int64(0); pg < pages; pg++ {
			ok, err := s2.ReadPage(oid, pg, buf)
			if err != nil {
				t.Fatal(err)
			}
			if !ok || !bytes.Equal(buf, pageOf(oid, pg)) {
				t.Fatalf("oid %d page %d wrong after crash", oid, pg)
			}
		}
	}
	if rep := s2.Fsck(); !rep.OK() {
		t.Fatalf("fsck after concurrent batches: %+v", rep)
	}
}

// TestWritePagesValidation: a bad batch fails whole and leaks no blocks.
func TestWritePagesValidation(t *testing.T) {
	s, _, _ := newStore(t)
	oid := s.NewOID()
	s.Ensure(oid, 1)
	free := s.FreeBlocks()
	if _, err := s.WritePages(oid, []PageWrite{{Pg: 0, Data: make([]byte, 17)}}); err == nil {
		t.Fatal("short page accepted")
	}
	if got := s.FreeBlocks(); got != free {
		t.Fatalf("failed batch leaked blocks: %d -> %d", free, got)
	}
	if _, err := s.WritePages(0xdeadbeef, []PageWrite{{Pg: 0, Data: make([]byte, BlockSize)}}); err == nil {
		t.Fatal("unknown oid accepted")
	}
}
