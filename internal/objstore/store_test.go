package objstore

import (
	"bytes"
	"errors"
	"fmt"
	"testing"
	"testing/quick"

	"aurora/internal/clock"
	"aurora/internal/device"
)

func newStore(t *testing.T) (*Store, *device.Stripe, *clock.Virtual) {
	t.Helper()
	clk := clock.NewVirtual()
	dev := device.NewStripe(clk, clock.DefaultCosts(), 4, 64<<10, 512<<20)
	s, err := Format(dev, clk, clock.DefaultCosts())
	if err != nil {
		t.Fatal(err)
	}
	return s, dev, clk
}

func reopen(t *testing.T, dev *device.Stripe, clk *clock.Virtual) *Store {
	t.Helper()
	s, err := Recover(dev, clk, clock.DefaultCosts())
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestFormatCommitsEpochOne(t *testing.T) {
	s, _, _ := newStore(t)
	if got := s.Epoch(); got != 1 {
		t.Fatalf("fresh store epoch = %d, want 1", got)
	}
	if len(s.Objects()) != 0 {
		t.Fatal("fresh store has objects")
	}
}

func TestRecordRoundTrip(t *testing.T) {
	s, _, _ := newStore(t)
	oid := s.NewOID()
	want := []byte("a file descriptor record")
	if err := s.PutRecord(oid, 7, want); err != nil {
		t.Fatal(err)
	}
	got, err := s.GetRecord(oid)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("got %q, want %q", got, want)
	}
	if ut, _ := s.UType(oid); ut != 7 {
		t.Fatalf("utype = %d, want 7", ut)
	}
	if sz, _ := s.Size(oid); sz != int64(len(want)) {
		t.Fatalf("size = %d, want %d", sz, len(want))
	}
}

func TestLargeRecordSpillsToPages(t *testing.T) {
	s, _, _ := newStore(t)
	oid := s.NewOID()
	want := make([]byte, InlineMax*4)
	for i := range want {
		want[i] = byte(i * 13)
	}
	if err := s.PutRecord(oid, 1, want); err != nil {
		t.Fatal(err)
	}
	got, err := s.GetRecord(oid)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("large record corrupted")
	}
}

func TestRecordSurvivesRecovery(t *testing.T) {
	s, dev, clk := newStore(t)
	oid := s.NewOID()
	if err := s.PutRecord(oid, 3, []byte("persisted")); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	s2 := reopen(t, dev, clk)
	got, err := s2.GetRecord(oid)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "persisted" {
		t.Fatalf("after recovery got %q", got)
	}
	if ut, _ := s2.UType(oid); ut != 3 {
		t.Fatalf("utype lost: %d", ut)
	}
}

func TestUncommittedInvisibleAfterRecovery(t *testing.T) {
	s, dev, clk := newStore(t)
	committed := s.NewOID()
	s.PutRecord(committed, 1, []byte("old"))
	if _, err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	// Modify and create without committing.
	s.PutRecord(committed, 1, []byte("new-uncommitted"))
	orphan := s.NewOID()
	s.PutRecord(orphan, 1, []byte("orphan"))

	s2 := reopen(t, dev, clk)
	got, err := s2.GetRecord(committed)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "old" {
		t.Fatalf("recovered %q, want pre-crash committed %q", got, "old")
	}
	if s2.Exists(orphan) {
		t.Fatal("uncommitted object visible after recovery")
	}
}

func TestPageRoundTrip(t *testing.T) {
	s, _, _ := newStore(t)
	oid := s.NewOID()
	s.Ensure(oid, 2)
	page := make([]byte, BlockSize)
	for i := range page {
		page[i] = byte(i)
	}
	if err := s.WritePage(oid, 5, page); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, BlockSize)
	found, err := s.ReadPage(oid, 5, got)
	if err != nil || !found {
		t.Fatalf("found=%v err=%v", found, err)
	}
	if !bytes.Equal(got, page) {
		t.Fatal("page corrupted")
	}
	// Hole reads report absence and zeros.
	found, err = s.ReadPage(oid, 4, got)
	if err != nil || found {
		t.Fatalf("hole: found=%v err=%v", found, err)
	}
	for _, b := range got {
		if b != 0 {
			t.Fatal("hole not zeroed")
		}
	}
	if sz, _ := s.Size(oid); sz != 6*BlockSize {
		t.Fatalf("size = %d, want %d", sz, 6*BlockSize)
	}
}

func TestPagesAcrossChunkBoundary(t *testing.T) {
	s, dev, clk := newStore(t)
	oid := s.NewOID()
	s.Ensure(oid, 2)
	page := make([]byte, BlockSize)
	idxs := []int64{0, ChunkFanout - 1, ChunkFanout, 3 * ChunkFanout}
	for _, pg := range idxs {
		page[0] = byte(pg % 251)
		if err := s.WritePage(oid, pg, page); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	s2 := reopen(t, dev, clk)
	for _, pg := range idxs {
		found, err := s2.ReadPage(oid, pg, page)
		if err != nil || !found {
			t.Fatalf("page %d: found=%v err=%v", pg, found, err)
		}
		if page[0] != byte(pg%251) {
			t.Fatalf("page %d content = %d", pg, page[0])
		}
	}
}

func TestWriteAtReadAt(t *testing.T) {
	s, _, _ := newStore(t)
	oid := s.NewOID()
	s.Ensure(oid, 2)
	data := []byte("spans a page boundary for sure")
	off := int64(BlockSize - 10)
	if err := s.WriteAt(oid, off, data); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(data))
	n, err := s.ReadAt(oid, off, got)
	if err != nil || n != len(data) {
		t.Fatalf("n=%d err=%v", n, err)
	}
	if !bytes.Equal(got, data) {
		t.Fatalf("got %q", got)
	}
	// Overwrite a middle slice; neighbors must survive (read-modify-write).
	if err := s.WriteAt(oid, off+5, []byte("XYZ")); err != nil {
		t.Fatal(err)
	}
	s.ReadAt(oid, off, got)
	want := append([]byte{}, data...)
	copy(want[5:], "XYZ")
	if !bytes.Equal(got, want) {
		t.Fatalf("after partial overwrite got %q, want %q", got, want)
	}
}

func TestTruncateShrinkAndRegrow(t *testing.T) {
	s, _, _ := newStore(t)
	oid := s.NewOID()
	s.Ensure(oid, 2)
	if err := s.WriteAt(oid, 0, bytes.Repeat([]byte{0xEE}, 3*BlockSize)); err != nil {
		t.Fatal(err)
	}
	if err := s.Truncate(oid, BlockSize+100); err != nil {
		t.Fatal(err)
	}
	if sz, _ := s.Size(oid); sz != BlockSize+100 {
		t.Fatalf("size = %d", sz)
	}
	// Regrow: bytes past the old cut must read zero, not stale 0xEE.
	if err := s.Truncate(oid, 2*BlockSize); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 200)
	if _, err := s.ReadAt(oid, BlockSize+50, got); err != nil {
		t.Fatal(err)
	}
	for i := 50; i < 200; i++ {
		if got[i] != 0 {
			t.Fatalf("stale byte at +%d after regrow: %x", i, got[i])
		}
	}
	for i := 0; i < 50; i++ {
		if got[i] != 0xEE {
			t.Fatalf("live byte at +%d lost: %x", i, got[i])
		}
	}
}

func TestDeleteRemovesObject(t *testing.T) {
	s, dev, clk := newStore(t)
	oid := s.NewOID()
	s.PutRecord(oid, 1, []byte("doomed"))
	s.Checkpoint()
	if err := s.Delete(oid); err != nil {
		t.Fatal(err)
	}
	if s.Exists(oid) {
		t.Fatal("object still exists")
	}
	s.Checkpoint()
	s2 := reopen(t, dev, clk)
	if s2.Exists(oid) {
		t.Fatal("deleted object resurrected by recovery")
	}
}

func TestHistoryViews(t *testing.T) {
	s, _, _ := newStore(t)
	oid := s.NewOID()
	s.PutRecord(oid, 1, []byte("epoch2"))
	st2, err := s.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	s.PutRecord(oid, 1, []byte("epoch3"))
	other := s.NewOID()
	s.PutRecord(other, 1, []byte("new in 3"))
	st3, err := s.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}

	v2, err := s.RestoreView(st2.Epoch)
	if err != nil {
		t.Fatal(err)
	}
	if got, _ := v2.GetRecord(oid); string(got) != "epoch2" {
		t.Fatalf("view2 record = %q", got)
	}
	if v2.Exists(other) {
		t.Fatal("object from epoch 3 visible in epoch-2 view")
	}

	v3, err := s.RestoreView(st3.Epoch)
	if err != nil {
		t.Fatal(err)
	}
	if got, _ := v3.GetRecord(oid); string(got) != "epoch3" {
		t.Fatalf("view3 record = %q", got)
	}
	if !v3.Exists(other) {
		t.Fatal("epoch-3 object missing from its view")
	}
}

func TestViewOfPagedHistory(t *testing.T) {
	s, _, _ := newStore(t)
	oid := s.NewOID()
	s.Ensure(oid, 2)
	page := make([]byte, BlockSize)
	page[0] = 1
	s.WritePage(oid, 0, page)
	st1, _ := s.Checkpoint()
	page[0] = 2
	s.WritePage(oid, 0, page)
	s.Checkpoint()

	v, err := s.RestoreView(st1.Epoch)
	if err != nil {
		t.Fatal(err)
	}
	got := make([]byte, BlockSize)
	if _, err := v.ReadPage(oid, 0, got); err != nil {
		t.Fatal(err)
	}
	if got[0] != 1 {
		t.Fatalf("historical page byte = %d, want 1 (old version)", got[0])
	}
	// Live store still sees the new version.
	s.ReadPage(oid, 0, got)
	if got[0] != 2 {
		t.Fatalf("live page byte = %d, want 2", got[0])
	}
}

func TestReleaseHistoryFreesBlocks(t *testing.T) {
	s, _, _ := newStore(t)
	oid := s.NewOID()
	s.Ensure(oid, 2)
	page := make([]byte, BlockSize)
	// Build several epochs each overwriting the same pages.
	for e := 0; e < 5; e++ {
		for pg := int64(0); pg < 8; pg++ {
			page[0] = byte(e)
			s.WritePage(oid, pg, page)
		}
		if _, err := s.Checkpoint(); err != nil {
			t.Fatal(err)
		}
	}
	if s.DeadBlocks() == 0 {
		t.Fatal("overwrites produced no dead blocks while history retained")
	}
	freed := s.ReleaseCheckpointsBefore(s.Epoch())
	if freed == 0 {
		t.Fatal("releasing history freed nothing")
	}
	if got := s.RetainedCheckpoints(); len(got) != 1 || got[0] != s.Epoch() {
		t.Fatalf("retained = %v, want only current epoch", got)
	}
	// Released epochs are no longer viewable.
	if _, err := s.RestoreView(2); !errors.Is(err, ErrNoEpoch) {
		t.Fatalf("view of released epoch: err = %v, want ErrNoEpoch", err)
	}
}

func TestSameIntervalOverwriteReusesBlocksImmediately(t *testing.T) {
	s, _, _ := newStore(t)
	oid := s.NewOID()
	s.Ensure(oid, 2)
	page := make([]byte, BlockSize)
	s.WritePage(oid, 0, page) // first version, born this interval
	before := s.FreeBlocks()
	deadBefore := s.DeadBlocks() // index blocks from Format's commit live here
	s.WritePage(oid, 0, page)    // overwrite within the same interval
	if got := s.FreeBlocks(); got != before+1 {
		t.Fatalf("freelist = %d, want %d (immediate reuse, no GC pass)", got, before+1)
	}
	if got := s.DeadBlocks(); got != deadBefore {
		t.Fatalf("same-interval overwrite went to deadlist (%d -> %d)", deadBefore, got)
	}
}

func TestIncrementalCheckpointWritesOnlyDirty(t *testing.T) {
	s, _, _ := newStore(t)
	big := s.NewOID()
	s.Ensure(big, 2)
	page := make([]byte, BlockSize)
	for pg := int64(0); pg < 256; pg++ {
		s.WritePage(big, pg, page)
	}
	if _, err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	devBefore := s.Stats().DataBytes
	// Dirty one page; the next checkpoint must not rewrite the other 255.
	s.WritePage(big, 17, page)
	st, err := s.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	written := s.Stats().DataBytes - devBefore
	if written != BlockSize {
		t.Fatalf("incremental checkpoint wrote %d data bytes, want one page", written)
	}
	if st.DirtyObjects != 1 {
		t.Fatalf("dirty objects = %d, want 1", st.DirtyObjects)
	}
}

func TestCheckpointDurability(t *testing.T) {
	s, _, clk := newStore(t)
	oid := s.NewOID()
	s.PutRecord(oid, 1, bytes.Repeat([]byte("x"), 1<<20))
	st, err := s.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	if st.DurableAt <= clk.Now() {
		// A 1 MiB flush takes longer than the synchronous commit charge.
		t.Fatalf("durableAt %v not after now %v", st.DurableAt, clk.Now())
	}
	if err := s.WaitDurable(st.Epoch); err != nil {
		t.Fatal(err)
	}
	if clk.Now() < st.DurableAt {
		t.Fatalf("WaitDurable left clock at %v, want >= %v", clk.Now(), st.DurableAt)
	}
	if err := s.WaitDurable(999); !errors.Is(err, ErrNoEpoch) {
		t.Fatalf("WaitDurable(999) = %v", err)
	}
}

func TestManyObjectsSurviveRecovery(t *testing.T) {
	s, dev, clk := newStore(t)
	const n = 200
	oids := make([]OID, n)
	for i := range oids {
		oids[i] = s.NewOID()
		s.PutRecord(oids[i], uint16(i%8), []byte(fmt.Sprintf("object-%d", i)))
	}
	s.Checkpoint()
	s2 := reopen(t, dev, clk)
	for i, oid := range oids {
		got, err := s2.GetRecord(oid)
		if err != nil {
			t.Fatalf("object %d: %v", i, err)
		}
		if want := fmt.Sprintf("object-%d", i); string(got) != want {
			t.Fatalf("object %d = %q, want %q", i, got, want)
		}
	}
	// OID allocation resumes without collision.
	fresh := s2.NewOID()
	for _, oid := range oids {
		if fresh == oid {
			t.Fatal("recovered store reissued an existing OID")
		}
	}
}

func TestJournalRejectsPagedOps(t *testing.T) {
	s, _, _ := newStore(t)
	oid := s.NewOID()
	if _, err := s.CreateJournal(oid, 9, 1<<20); err != nil {
		t.Fatal(err)
	}
	if err := s.WritePage(oid, 0, make([]byte, BlockSize)); !errors.Is(err, ErrIsJournal) {
		t.Fatalf("WritePage on journal: %v", err)
	}
	if _, err := s.GetRecord(oid); !errors.Is(err, ErrIsJournal) {
		t.Fatalf("GetRecord on journal: %v", err)
	}
	other := s.NewOID()
	s.PutRecord(other, 1, []byte("x"))
	if _, err := s.OpenJournal(other); !errors.Is(err, ErrNotJournal) {
		t.Fatalf("OpenJournal on record: %v", err)
	}
}

// Property: a random interleaving of writes, checkpoints and recoveries
// always reads back the data as of the last committed checkpoint.
func TestCommittedStateProperty(t *testing.T) {
	type step struct {
		Write      bool
		Page       uint8
		Val        byte
		Checkpoint bool
		Crash      bool
	}
	f := func(steps []step) bool {
		clk := clock.NewVirtual()
		dev := device.NewStripe(clk, clock.DefaultCosts(), 4, 64<<10, 256<<20)
		s, err := Format(dev, clk, clock.DefaultCosts())
		if err != nil {
			return false
		}
		oid := s.NewOID()
		s.Ensure(oid, 2)
		if _, err := s.Checkpoint(); err != nil {
			return false
		}
		live := map[uint8]byte{}      // state including uncommitted writes
		committed := map[uint8]byte{} // state as of last checkpoint
		page := make([]byte, BlockSize)
		for _, st := range steps {
			switch {
			case st.Crash:
				s2, err := Recover(dev, clk, clock.DefaultCosts())
				if err != nil {
					return false
				}
				s = s2
				live = map[uint8]byte{}
				for k, v := range committed {
					live[k] = v
				}
			case st.Checkpoint:
				if _, err := s.Checkpoint(); err != nil {
					return false
				}
				committed = map[uint8]byte{}
				for k, v := range live {
					committed[k] = v
				}
			case st.Write:
				pg := int64(st.Page % 16)
				page[0] = st.Val
				if err := s.WritePage(oid, pg, page); err != nil {
					return false
				}
				live[uint8(pg)] = st.Val
			}
		}
		for pg, want := range live {
			found, err := s.ReadPage(oid, int64(pg), page)
			if err != nil {
				return false
			}
			if !found || page[0] != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
