package objstore

import (
	"fmt"
	"hash/crc32"
	"sort"
)

// Fsck: offline consistency verification of the store's committed state —
// the kind of tool an adopter of a new storage system wants on day one.

// FsckReport summarizes a verification pass.
type FsckReport struct {
	Objects        int
	Journals       int
	Blocks         int64 // data + chunk blocks referenced by live objects
	ScrubbedPages  int64 // data pages whose content checksum was verified
	RetainedEpochs int
	Problems       []string
}

// OK reports whether the pass found no problems.
func (r FsckReport) OK() bool { return len(r.Problems) == 0 }

func (r *FsckReport) problemf(format string, args ...any) {
	r.Problems = append(r.Problems, fmt.Sprintf(format, args...))
}

// Fsck verifies the committed state: every object record decodes, every
// referenced block lies inside the device and is referenced exactly once
// across live objects, journal extents do not overlap data, every data
// page's content matches the per-slot checksum in its block-map chunk
// (catching torn pages and media bit-rot), and every retained checkpoint's
// index loads. It reads only committed structures.
func (s *Store) Fsck() FsckReport {
	var rep FsckReport
	s.mu.Lock()
	devSize := s.dev.Size()
	dataStart := s.dataStart()
	seen := make(map[int64]OID)
	claim := func(oid OID, addr int64, what string) {
		if addr == 0 {
			return
		}
		if addr < dataStart || addr+BlockSize > devSize {
			rep.problemf("object %d: %s block %#x out of device bounds", oid, what, addr)
			return
		}
		if prev, ok := seen[addr]; ok {
			rep.problemf("block %#x referenced by both object %d and %d", addr, prev, oid)
			return
		}
		seen[addr] = oid
		rep.Blocks++
	}

	page := make([]byte, BlockSize)
	for _, oid := range sortedOIDKeys(s.objects) {
		o := s.objects[oid]
		rep.Objects++
		switch {
		case o.journal != nil:
			rep.Journals++
			js := o.journal
			if js.extentAddr < dataStart || js.extentAddr+js.capBlocks*BlockSize > devSize {
				rep.problemf("journal %d: extent [%#x,+%d blocks) out of bounds", oid, js.extentAddr, js.capBlocks)
			}
			for i := int64(0); i < js.capBlocks; i++ {
				claim(oid, js.extentAddr+i*BlockSize, "journal extent")
			}
		case o.chunks != nil:
			cis := make([]int64, 0, len(o.chunks))
			for ci := range o.chunks {
				cis = append(cis, ci)
			}
			sortInt64s(cis)
			for _, ci := range cis {
				c := o.chunks[ci]
				if !c.loaded && c.addr != 0 {
					buf := make([]byte, BlockSize)
					if _, err := s.dev.ReadAt(buf, c.addr); err != nil {
						rep.problemf("object %d: chunk %d unreadable: %v", oid, ci, err)
						continue
					}
					if err := decodeChunk(c, buf); err != nil {
						rep.problemf("object %d: chunk %d at %#x: %v", oid, ci, c.addr, err)
						continue
					}
				}
				claim(oid, c.addr, "chunk")
				for slot, a := range c.addrs {
					claim(oid, a, fmt.Sprintf("page %d", ci*ChunkFanout+int64(slot)))
					// Scrub: the page's bytes must hash to the checksum
					// stored beside its address.
					if a == 0 || a < dataStart || a+BlockSize > devSize {
						continue
					}
					if _, err := s.dev.ReadAt(page, a); err != nil {
						rep.problemf("object %d: page %d at %#x unreadable: %v",
							oid, ci*ChunkFanout+int64(slot), a, err)
						continue
					}
					rep.ScrubbedPages++
					if got := crc32.ChecksumIEEE(page); got != c.sums[slot] {
						rep.problemf("object %d: page %d at %#x checksum %#x, chunk says %#x (torn or rotted)",
							oid, ci*ChunkFanout+int64(slot), a, got, c.sums[slot])
					}
				}
			}
		}
		// The committed record must decode.
		if o.recordAddr != 0 {
			if _, err := s.fetchRecord(o.recordAddr, o.recordLen); err != nil {
				rep.problemf("object %d: record unreadable: %v", oid, err)
			}
		}
	}

	// Free and dead blocks must not alias live references.
	for _, a := range s.freelist {
		if holder, ok := seen[a]; ok {
			rep.problemf("free block %#x also referenced by object %d", a, holder)
		}
	}
	for _, db := range s.deadlist {
		if holder, ok := seen[db.addr]; ok {
			rep.problemf("dead block %#x (epochs %d..%d) also live in object %d",
				db.addr, db.birth, db.freedAt, holder)
		}
	}

	// Retained history must load.
	retained := append([]ckptInfo(nil), s.retained...)
	walBase, walBlocks := s.walBase, s.walBlocks
	walHead, walSeq, epoch := s.walHead, s.walSeq, s.epoch
	s.mu.Unlock()
	for _, c := range retained {
		rep.RetainedEpochs++
		if _, err := s.fetchIndex(c.indexAddr, c.indexLen); err != nil {
			rep.problemf("retained epoch %d: index unreadable: %v", c.epoch, err)
		}
	}
	s.fsckWAL(&rep, walBase, walBlocks, walHead, walSeq, epoch)
	return rep
}

// fsckWAL verifies the reserved WAL region: every frame inside the
// committed head must decode (a CRC mismatch there is corruption, not a
// torn tail), the current generation's sequence numbers must chain 1..walSeq
// contiguously, and no frame anywhere may claim a base epoch the store has
// never committed (an orphaned segment). Bytes past the head that fail to
// decode are a clean torn tail and are ignored.
func (s *Store) fsckWAL(rep *FsckReport, walBase, walBlocks, walHead int64, walSeq uint64, epoch Epoch) {
	if walBlocks == 0 {
		return
	}
	region := make([]byte, walBlocks*BlockSize)
	if _, err := s.dev.ReadAt(region, walBase); err != nil {
		rep.problemf("wal: region unreadable: %v", err)
		return
	}
	var off int64
	var maxSeq uint64
	seenCur := false
	for off < walHead {
		fr, padded, ok := decodeWALFrame(region[off:])
		if !ok {
			rep.problemf("wal: undecodable frame at %#x inside committed head %#x", walBase+off, walHead)
			return
		}
		if fr.base > epoch {
			rep.problemf("wal: orphaned frame at %#x for future epoch %d (store at %d)", walBase+off, fr.base, epoch)
		} else if fr.base == epoch {
			if fr.seq != maxSeq+1 {
				rep.problemf("wal: frame at %#x has seq %d, expected %d", walBase+off, fr.seq, maxSeq+1)
			}
			maxSeq = fr.seq
			seenCur = true
		} else if seenCur {
			rep.problemf("wal: stale generation frame at %#x inside committed head", walBase+off)
		}
		off += padded
	}
	if maxSeq != walSeq {
		rep.problemf("wal: committed chain reaches seq %d, store says %d", maxSeq, walSeq)
	}
	// Past the head: stale generations are fine, future epochs are orphans.
	for off < int64(len(region)) {
		fr, padded, ok := decodeWALFrame(region[off:])
		if !ok {
			break // torn tail or erased space: clean
		}
		if fr.base > epoch {
			rep.problemf("wal: orphaned frame at %#x past head for future epoch %d (store at %d)", walBase+off, fr.base, epoch)
		}
		off += padded
	}
}

// LivePageAddrs returns the device byte address of every committed data
// page referenced by a live object, ascending. This is the scrub surface:
// fault scenarios use it to aim bit-rot at data the fsck checksum pass is
// obligated to catch, deterministically ("rot the Nth live page") instead
// of guessing raw offsets. Unloaded block-map chunks are decoded from the
// device the same way Fsck decodes them; undecodable chunks contribute no
// pages (Fsck reports them separately).
func (s *Store) LivePageAddrs() []int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	var out []int64
	for _, oid := range sortedOIDKeys(s.objects) {
		o := s.objects[oid]
		if o.chunks == nil {
			continue
		}
		cis := make([]int64, 0, len(o.chunks))
		for ci := range o.chunks {
			cis = append(cis, ci)
		}
		sortInt64s(cis)
		for _, ci := range cis {
			c := o.chunks[ci]
			if !c.loaded && c.addr != 0 {
				buf := make([]byte, BlockSize)
				if _, err := s.dev.ReadAt(buf, c.addr); err != nil {
					continue
				}
				if err := decodeChunk(c, buf); err != nil {
					continue
				}
			}
			for _, a := range c.addrs {
				if a != 0 {
					out = append(out, a)
				}
			}
		}
	}
	sortInt64s(out)
	return out
}

// sortedOIDKeys returns the map's keys ascending, for stable reports.
func sortedOIDKeys(m map[OID]*object) []OID {
	out := make([]OID, 0, len(m))
	for oid := range m {
		out = append(out, oid)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
