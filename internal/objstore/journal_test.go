package objstore

import (
	"bytes"
	"errors"
	"fmt"
	"testing"
	"time"

	"aurora/internal/clock"
	"aurora/internal/device"
)

func newJournal(t *testing.T, capacity int64) (*Store, *Journal, *device.Stripe, *clock.Virtual) {
	t.Helper()
	s, dev, clk := newStore(t)
	oid := s.NewOID()
	j, err := s.CreateJournal(oid, 9, capacity)
	if err != nil {
		t.Fatal(err)
	}
	return s, j, dev, clk
}

func TestJournalAppendEntries(t *testing.T) {
	_, j, _, _ := newJournal(t, 1<<20)
	var want [][]byte
	for i := 0; i < 10; i++ {
		p := []byte(fmt.Sprintf("record %d", i))
		want = append(want, p)
		seq, err := j.Append(p)
		if err != nil {
			t.Fatal(err)
		}
		if seq != uint64(i+1) {
			t.Fatalf("seq = %d, want %d", seq, i+1)
		}
	}
	got, err := j.Entries()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("entries = %d, want %d", len(got), len(want))
	}
	for i := range got {
		if !bytes.Equal(got[i].Payload, want[i]) {
			t.Fatalf("entry %d = %q, want %q", i, got[i].Payload, want[i])
		}
	}
}

func TestJournalAppendLatencyMatchesTable5(t *testing.T) {
	_, j, _, clk := newJournal(t, 16<<20)
	before := clk.Now()
	if _, err := j.Append(make([]byte, 4096-frameHeaderLen)); err != nil {
		t.Fatal(err)
	}
	got := clk.Now() - before
	// Paper Table 5: 4 KiB journaled write in 28 us.
	if got < 25*time.Microsecond || got > 31*time.Microsecond {
		t.Fatalf("4 KiB journal append charged %v, want ~28us", got)
	}
}

func TestJournalSurvivesCrashWithoutCheckpoint(t *testing.T) {
	s, j, dev, clk := newJournal(t, 1<<20)
	oid := j.OID()
	if _, err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	// Appends after the checkpoint are synchronous: they must survive a
	// crash even though no further checkpoint commits. This is the whole
	// point of the journal API.
	j.Append([]byte("wal-1"))
	j.Append([]byte("wal-2"))

	s2 := reopen(t, dev, clk)
	j2, err := s2.OpenJournal(oid)
	if err != nil {
		t.Fatal(err)
	}
	got, err := j2.Entries()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || string(got[0].Payload) != "wal-1" || string(got[1].Payload) != "wal-2" {
		t.Fatalf("recovered entries = %v", got)
	}
}

func TestJournalTruncateCommitted(t *testing.T) {
	s, j, dev, clk := newJournal(t, 1<<20)
	oid := j.OID()
	j.Append([]byte("old-1"))
	j.Append([]byte("old-2"))
	if _, err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	j.Truncate()
	if _, err := s.Checkpoint(); err != nil { // commit the truncation
		t.Fatal(err)
	}
	j.Append([]byte("new-1"))

	s2 := reopen(t, dev, clk)
	j2, err := s2.OpenJournal(oid)
	if err != nil {
		t.Fatal(err)
	}
	got, err := j2.Entries()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || string(got[0].Payload) != "new-1" {
		t.Fatalf("after committed truncate, entries = %v (want only new-1)", got)
	}
}

func TestJournalUncommittedTruncateReplaysOld(t *testing.T) {
	// A truncate that never reaches a checkpoint must not lose the frames
	// it covered: recovery is at-least-once.
	s, j, dev, clk := newJournal(t, 1<<20)
	oid := j.OID()
	j.Append([]byte("covered"))
	if _, err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	j.Truncate() // not committed
	s2 := reopen(t, dev, clk)
	j2, err := s2.OpenJournal(oid)
	if err != nil {
		t.Fatal(err)
	}
	got, err := j2.Entries()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || string(got[0].Payload) != "covered" {
		t.Fatalf("entries = %v, want the covered frame back", got)
	}
}

func TestJournalNewGenerationFramesRecoverable(t *testing.T) {
	// Crash after truncate + new appends, before the truncating
	// checkpoint: the new-generation frames must replay.
	s, j, dev, clk := newJournal(t, 1<<20)
	oid := j.OID()
	j.Append([]byte("gen1-a"))
	if _, err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	j.Truncate()
	j.Append([]byte("gen2-a"))
	j.Append([]byte("gen2-b"))

	s2 := reopen(t, dev, clk)
	j2, err := s2.OpenJournal(oid)
	if err != nil {
		t.Fatal(err)
	}
	got, err := j2.Entries()
	if err != nil {
		t.Fatal(err)
	}
	var payloads []string
	for _, e := range got {
		payloads = append(payloads, string(e.Payload))
	}
	// gen2 frames overwrote gen1's prefix; both remaining must replay.
	if len(payloads) != 2 || payloads[0] != "gen2-a" || payloads[1] != "gen2-b" {
		t.Fatalf("entries = %v", payloads)
	}
}

func TestJournalFull(t *testing.T) {
	_, j, _, _ := newJournal(t, BlockSize)
	big := make([]byte, BlockSize/2)
	if _, err := j.Append(big); err != nil {
		t.Fatal(err)
	}
	if _, err := j.Append(big); !errors.Is(err, ErrJournalFull) {
		t.Fatalf("overfull append: %v", err)
	}
	// Truncate frees the space.
	j.Truncate()
	if _, err := j.Append(big); err != nil {
		t.Fatal(err)
	}
}

func TestJournalUsedAndCapacity(t *testing.T) {
	_, j, _, _ := newJournal(t, 10*BlockSize)
	if j.Capacity() != 10*BlockSize {
		t.Fatalf("capacity = %d", j.Capacity())
	}
	if j.Used() != 0 {
		t.Fatalf("fresh used = %d", j.Used())
	}
	j.Append(make([]byte, 100))
	if got := j.Used(); got != 100+frameHeaderLen {
		t.Fatalf("used = %d, want %d", got, 100+frameHeaderLen)
	}
}

func TestJournalDeleteReclaimsExtent(t *testing.T) {
	s, j, _, _ := newJournal(t, 4*BlockSize)
	oid := j.OID()
	if _, err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if err := s.Delete(oid); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if freed := s.ReleaseCheckpointsBefore(s.Epoch()); freed < 4 {
		t.Fatalf("release freed %d blocks, want >= 4 (the extent)", freed)
	}
	// Released blocks stage until the next superblock is durable (a crash
	// before then must find them intact for the still-referenced history).
	if _, err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if err := s.WaitDurable(s.Epoch()); err != nil {
		t.Fatal(err)
	}
	if got := s.FreeBlocks(); got < 4 {
		t.Fatalf("free blocks = %d after promoting commit, want >= 4 (the extent)", got)
	}
}
