package objstore

// WAL-first incremental commit. A reserved region of the device directly
// after the superblocks holds a ring of CRC-framed delta records: each
// WALCommit serializes the interval's logical mutations (page publishes,
// inline puts, size changes, deletes, journal state changes) into one frame
// and appends it with a device-level ordering constraint, making the store
// durable without rewriting object records or the index. A later fold — an
// ordinary Checkpoint — absorbs the frames into base objects, after which
// the frame generation is dead; the head resets (log-structured GC) once
// the folding superblock is durable, so a crash before that instant still
// finds every frame the recoverable superblock needs.
//
// Recovery first loads the newest superblock's index, then scans the WAL
// region: frames whose base epoch matches the recovered epoch replay in
// sequence order, torn or stale tails terminate the scan. Replay reuses the
// locked mutator paths with recording suppressed, then reconciles the
// allocator: blocks a frame references are claimed out of the free pools,
// and bump-range blocks no committed frame ever referenced return to the
// freelist.

import (
	"encoding/binary"
	"errors"
	"fmt"
	"time"

	"aurora/internal/clock"
	"aurora/internal/flight"
	"aurora/internal/trace"
)

// ErrWALFull is returned by WALCommit when the frame does not fit in the
// reserved region; the caller folds (Fold) to reclaim it and may retry.
var ErrWALFull = errors.New("objstore: wal region full")

// walSector is the append granularity: frames are padded to the 512-byte
// atom the device tears at, so a torn append can never corrupt the frame
// before it.
const walSector = 512

// DefaultWALBlocks caps the reserved region at 4 MiB.
const DefaultWALBlocks = 1024

// walHeaderLen is magic(4) + frameLen(4) + base(8) + seq(8) + nextOID(8) +
// nextBlk(8) + nops(4).
const walHeaderLen = 44

// walBlocksFor sizes the reserved region: an eighth of the device, clamped
// to [4, DefaultWALBlocks] blocks.
func walBlocksFor(devSize int64) int64 {
	n := devSize / BlockSize / 8
	if n < 4 {
		n = 4
	}
	if n > DefaultWALBlocks {
		n = DefaultWALBlocks
	}
	return n
}

// dataStart is the first byte the block allocator may hand out: past the
// superblocks and the reserved WAL region. Requires mu (or a quiescent
// store — the geometry never changes after Format/Recover).
func (s *Store) dataStart() int64 {
	if s.walBlocks > 0 {
		return s.walBase + s.walBlocks*BlockSize
	}
	return 2 * BlockSize
}

// WAL delta-record kinds.
const (
	walOpPut     = 1 // inline record payload (copied)
	walOpPage    = 2 // COW page publish: slot -> already-submitted block
	walOpSize    = 3 // explicit size change (shrink retires tail slots)
	walOpDelete  = 4 // object removal
	walOpJournal = 5 // journal create / truncate (extent + generation)
)

// walOp is one logical mutation captured for replay.
type walOp struct {
	kind  uint8
	oid   OID
	utype uint16
	pg    int64
	addr  int64
	size  int64
	sum   uint32
	gen   uint64
	fseq  uint64
	data  []byte
}

// walFrame is one committed delta record.
type walFrame struct {
	base    Epoch // epoch the deltas apply on top of
	seq     uint64
	nextOID OID
	nextBlk int64
	ops     []walOp
}

// walNote captures op into the pending delta set. Replay suppresses
// recording so the replayed mutators do not re-log themselves. Requires mu.
func (s *Store) walNote(op walOp) {
	if s.replaying || s.walBlocks == 0 {
		return
	}
	s.walPending = append(s.walPending, op)
}

// encodeWALFrame serializes fr, sealed but not sector-padded.
func encodeWALFrame(fr *walFrame) []byte {
	var ops enc
	for _, op := range fr.ops {
		ops.u8(op.kind)
		ops.u64(uint64(op.oid))
		switch op.kind {
		case walOpPut:
			ops.u16(op.utype)
			ops.bytes(op.data)
		case walOpPage:
			ops.u16(op.utype)
			ops.i64(op.pg)
			ops.i64(op.addr)
			ops.u32(op.sum)
		case walOpSize:
			ops.i64(op.size)
		case walOpDelete:
		case walOpJournal:
			ops.u16(op.utype)
			ops.i64(op.addr)
			ops.i64(op.size)
			ops.u64(op.gen)
			ops.u64(op.fseq)
		}
	}
	frameLen := walHeaderLen + len(ops.b) + 4
	var e enc
	e.u32(magicWAL)
	e.u32(uint32(frameLen))
	e.u64(uint64(fr.base))
	e.u64(fr.seq)
	e.u64(uint64(fr.nextOID))
	e.i64(fr.nextBlk)
	e.u32(uint32(len(fr.ops)))
	e.b = append(e.b, ops.b...)
	return e.seal()
}

// decodeWALFrame parses the frame at the start of b. ok is false for
// anything that is not a complete, checksummed frame (torn tail, stale
// bytes, garbage). padded is the frame's footprint in the ring.
func decodeWALFrame(b []byte) (fr *walFrame, padded int64, ok bool) {
	if len(b) < walHeaderLen+4 {
		return nil, 0, false
	}
	if binary.LittleEndian.Uint32(b) != magicWAL {
		return nil, 0, false
	}
	frameLen := int64(binary.LittleEndian.Uint32(b[4:]))
	if frameLen < walHeaderLen+4 || frameLen > int64(len(b)) {
		return nil, 0, false
	}
	d, err := newDec(b[:frameLen])
	if err != nil {
		return nil, 0, false
	}
	d.u32() // magic
	d.u32() // frameLen
	fr = &walFrame{
		base:    Epoch(d.u64()),
		seq:     d.u64(),
		nextOID: OID(d.u64()),
		nextBlk: d.i64(),
	}
	nops := int(d.u32())
	if nops < 0 || nops > len(b) {
		return nil, 0, false
	}
	for i := 0; i < nops && d.err == nil; i++ {
		op := walOp{kind: d.u8(), oid: OID(d.u64())}
		switch op.kind {
		case walOpPut:
			op.utype = d.u16()
			op.data = append([]byte(nil), d.bytes()...)
		case walOpPage:
			op.utype = d.u16()
			op.pg = d.i64()
			op.addr = d.i64()
			op.sum = d.u32()
		case walOpSize:
			op.size = d.i64()
		case walOpDelete:
		case walOpJournal:
			op.utype = d.u16()
			op.addr = d.i64()
			op.size = d.i64()
			op.gen = d.u64()
			op.fseq = d.u64()
		default:
			return nil, 0, false
		}
		fr.ops = append(fr.ops, op)
	}
	if d.err != nil {
		return nil, 0, false
	}
	padded = (frameLen + walSector - 1) / walSector * walSector
	return fr, padded, true
}

// WALCommitStats describes one WAL commit.
type WALCommitStats struct {
	Base          Epoch // epoch the frame applies on top of
	Seq           uint64
	Bytes         int64
	DurableAt     time.Duration
	CommitCharged time.Duration
}

// WALCommit makes the interval's mutations durable by appending one delta
// frame to the reserved WAL region instead of running a full checkpoint.
// The frame is ordered behind the interval's write-behind horizon — the
// same barrier discipline as the superblock — so it can never land on media
// that lost a block it references. Dirty state stays dirty: a later fold
// (Checkpoint) absorbs it into base objects. Returns ErrWALFull, with the
// pending deltas intact, when the region cannot take the frame.
func (s *Store) WALCommit() (WALCommitStats, error) {
	// The append event is recorded before the flight ring is serialized so
	// frame N's snapshot carries appends 1..N — the crash-phase evidence
	// the harness checks after replay.
	s.mu.Lock()
	peekBase, peekSeq := s.epoch, s.walSeq+1
	s.mu.Unlock()
	s.fl.Record(int64(s.clk.Now()), flight.EvWALAppend, int64(peekBase), int64(peekSeq), 0, "")
	s.persistFlight()

	s.mu.Lock()
	defer s.mu.Unlock()
	sw := clock.StartStopwatch(s.clk)
	span := s.tr.Begin(trace.TrackObjstore, "wal.append")
	s.maybeResetWALLocked()
	fr := &walFrame{
		base:    s.epoch,
		seq:     s.walSeq + 1,
		nextOID: s.nextOID,
		nextBlk: s.nextBlk,
		ops:     s.walPending,
	}
	st := WALCommitStats{Base: fr.base, Seq: fr.seq}
	body := encodeWALFrame(fr)
	total := (int64(len(body)) + walSector - 1) / walSector * walSector
	if s.walHead+total > s.walBlocks*BlockSize {
		span.End(trace.I("full", 1))
		return st, fmt.Errorf("%w: frame %d bytes, %d free", ErrWALFull,
			total, s.walBlocks*BlockSize-s.walHead)
	}
	vec := [][]byte{body}
	if pad := total - int64(len(body)); pad > 0 {
		vec = append(vec, make([]byte, pad))
	}
	done, err := s.dev.SubmitWritevAfter(vec, s.walBase+s.walHead, s.pendingDurable)
	if err != nil {
		span.End()
		return st, err
	}
	s.walHead += total
	s.walSeq = fr.seq
	s.walPending = nil
	s.pendingDurable = done
	s.walDurable[fr.seq] = done
	s.observeDurableLocked(done)
	st.Bytes = total
	st.DurableAt = done
	st.CommitCharged = sw.Elapsed()
	if s.tr != nil {
		s.tr.Count("objstore.wal_appends", 1)
		s.tr.Count("objstore.wal_bytes", total)
		s.tr.Gauge("objstore.wal_head", s.walHead)
	}
	span.End(trace.I("seq", int64(fr.seq)), trace.I("bytes", total), trace.I("ops", int64(len(fr.ops))))
	return st, nil
}

// observeDurableLocked feeds the durable-window histogram: the virtual gap
// between consecutive durability points, the store's recovery-loss bound.
// Requires mu.
func (s *Store) observeDurableLocked(done time.Duration) {
	if s.lastDurable > 0 && done > s.lastDurable {
		s.tr.Observe("durable.window_ns", int64(done-s.lastDurable))
	}
	s.lastDurable = done
}

// maybeResetWALLocked performs the deferred head reset: once virtual time
// passes the fold's superblock completion, no recoverable superblock can
// need the folded generation's frames, and the ring restarts from zero.
// Requires mu.
func (s *Store) maybeResetWALLocked() {
	if !s.pendingWALReset || s.clk.Now() < s.walResetAt {
		return
	}
	s.pendingWALReset = false
	if s.walHead == 0 {
		return
	}
	reclaimed := s.walHead
	s.walHead = 0
	s.fl.Record(int64(s.clk.Now()), flight.EvWALGC, reclaimed, int64(s.epoch), 0, "")
	if s.tr != nil {
		s.tr.Count("objstore.wal_gc_bytes", reclaimed)
		s.tr.Instant(trace.TrackObjstore, "wal.gc", trace.I("bytes", reclaimed))
	}
}

// Fold runs a full checkpoint, waits for it to become durable, and resets
// the WAL head. It is the guaranteed-progress fallback for ErrWALFull: on
// return the region is empty.
func (s *Store) Fold() (CheckpointStats, error) {
	cst, err := s.Checkpoint()
	if err != nil {
		return cst, err
	}
	if err := s.WaitDurable(cst.Epoch); err != nil {
		return cst, err
	}
	s.mu.Lock()
	s.maybeResetWALLocked()
	s.mu.Unlock()
	return cst, nil
}

// WALSeq returns the sequence number of the last committed WAL frame in the
// current generation (0 right after a fold or when the WAL is unused).
func (s *Store) WALSeq() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.walSeq
}

// WALHead returns the byte offset past the last appended frame in the
// reserved region (for tests and tooling).
func (s *Store) WALHead() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.walHead
}

// WALRegion returns the reserved region's device offset and size in bytes.
func (s *Store) WALRegion() (base, size int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.walBase, s.walBlocks * BlockSize
}

// WaitWALDurable blocks (in virtual time) until WAL frame seq of the
// current generation is durable. Sequence numbers folded away by a
// checkpoint fall back to the fold's own durability point, which covers
// them by construction.
func (s *Store) WaitWALDurable(seq uint64) error {
	s.mu.Lock()
	t, ok := s.walDurable[seq]
	if !ok {
		t, ok = s.durableAt[s.epoch]
	}
	s.mu.Unlock()
	if !ok {
		return fmt.Errorf("%w: wal seq %d", ErrNoEpoch, seq)
	}
	s.dev.WaitUntil(t)
	s.mu.Lock()
	s.maybeResetWALLocked()
	s.mu.Unlock()
	return nil
}

// walRecover scans the reserved region and replays the committed frames of
// the recovered epoch's generation on top of the loaded index. Called by
// Recover after loadIndex with s.epoch set.
func (s *Store) walRecover() error {
	if s.walBlocks == 0 {
		return nil
	}
	region := make([]byte, s.walBlocks*BlockSize)
	if _, err := s.dev.ReadAt(region, s.walBase); err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	var (
		frames []*walFrame
		off    int64
		end    int64
	)
	for off < int64(len(region)) {
		fr, padded, ok := decodeWALFrame(region[off:])
		if !ok || fr.base > s.epoch {
			break // torn tail, stale bytes, or an orphan (fsck's problem)
		}
		if fr.base == s.epoch {
			if fr.seq != uint64(len(frames))+1 {
				break
			}
			frames = append(frames, fr)
			end = off + padded
		} else if len(frames) > 0 {
			break // older-generation leftovers past the current chain
		}
		off += padded
	}
	if len(frames) == 0 {
		// No current-generation frames: the ring restarts. Recovery always
		// picks the newest superblock, so older generations are dead.
		s.walHead = 0
		return nil
	}

	s.replaying = true
	defer func() { s.replaying = false }()
	idxNextBlk := s.nextBlk
	claimed := make(map[int64]bool)
	for _, fr := range frames {
		s.walSeq = fr.seq
		if fr.nextOID > s.nextOID {
			s.nextOID = fr.nextOID
		}
		if fr.nextBlk > s.nextBlk {
			s.nextBlk = fr.nextBlk
		}
		for _, op := range fr.ops {
			if err := s.applyWALOpLocked(op, claimed); err != nil {
				return fmt.Errorf("wal frame %d: %w", fr.seq, err)
			}
		}
	}
	// Bump-range blocks no committed frame referenced were allocated after
	// the last frame (or reserved and never published): nothing on a
	// recoverable path references them, so they return to the free pool.
	for blk := idxNextBlk; blk < s.nextBlk; blk++ {
		if addr := blk * BlockSize; !claimed[addr] {
			s.freelist = append(s.freelist, addr)
		}
	}
	s.walHead = end
	s.walReplayed = len(frames)
	return nil
}

// WALReplayed reports how many frames the last Recover replayed.
func (s *Store) WALReplayed() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.walReplayed
}

// claimWALBlock reconciles the allocator with a block a replayed frame
// references: it leaves the free pools and is born in the current interval.
// Requires mu.
func (s *Store) claimWALBlock(addr int64, claimed map[int64]bool) {
	for i, a := range s.freelist {
		if a == addr {
			s.freelist = append(s.freelist[:i], s.freelist[i+1:]...)
			break
		}
	}
	for i, a := range s.releasing {
		if a == addr {
			s.releasing = append(s.releasing[:i], s.releasing[i+1:]...)
			break
		}
	}
	s.birthOf[addr] = s.curEpoch()
	claimed[addr] = true
}

// applyWALOpLocked replays one delta through the same locked mutator logic
// the live paths use (recording suppressed via s.replaying). Requires mu.
func (s *Store) applyWALOpLocked(op walOp, claimed map[int64]bool) error {
	switch op.kind {
	case walOpPut:
		o := s.ensure(op.oid, op.utype)
		if o.journal != nil {
			return fmt.Errorf("%w: put on journal %d", ErrCorrupt, op.oid)
		}
		o.utype = op.utype
		s.dropChunks(o)
		o.inline = append(o.inline[:0], op.data...)
		o.size = int64(len(op.data))
	case walOpPage:
		o := s.ensure(op.oid, op.utype)
		if o.journal != nil {
			return fmt.Errorf("%w: page on journal %d", ErrCorrupt, op.oid)
		}
		if o.chunks == nil {
			// The live path converted inline -> paged and re-logged the
			// former inline content as page ops; the conversion itself is
			// pure bookkeeping here.
			o.inline = nil
			o.chunks = make(map[int64]*chunk)
		}
		c, err := s.loadChunk(o, op.pg, true)
		if err != nil {
			return err
		}
		s.claimWALBlock(op.addr, claimed)
		slot := op.pg % ChunkFanout
		if old := c.addrs[slot]; old != 0 && old != op.addr {
			s.retireBlock(old)
		}
		c.addrs[slot] = op.addr
		c.sums[slot] = op.sum
		c.dirty = true
	case walOpSize:
		o, err := s.lookup(op.oid)
		if err != nil {
			return fmt.Errorf("%w: size for unknown object %d", ErrCorrupt, op.oid)
		}
		if o.journal != nil {
			return fmt.Errorf("%w: size on journal %d", ErrCorrupt, op.oid)
		}
		if o.chunks == nil {
			if op.size <= int64(len(o.inline)) {
				o.inline = o.inline[:op.size]
			} else {
				o.inline = append(o.inline, make([]byte, op.size-int64(len(o.inline)))...)
			}
		} else if err := s.shrinkSlotsLocked(o, op.size); err != nil {
			return err
		}
		o.size = op.size
		o.dirty = true
	case walOpDelete:
		o, err := s.lookup(op.oid)
		if err != nil {
			return fmt.Errorf("%w: delete of unknown object %d", ErrCorrupt, op.oid)
		}
		if o.journal != nil {
			s.retireRun(o.journal.extentAddr, o.journal.capBlocks)
		}
		s.dropChunks(o)
		if o.recordAddr != 0 {
			s.retireRun(o.recordAddr, blocksFor(o.recordLen))
		}
		delete(s.objects, op.oid)
		s.deleted[op.oid] = true
	case walOpJournal:
		o := s.ensure(op.oid, op.utype)
		if o.journal == nil {
			s.dropChunks(o)
			o.inline = nil
			for i := int64(0); i < op.size; i++ {
				s.claimWALBlock(op.addr+i*BlockSize, claimed)
			}
			o.journal = &journalState{
				extentAddr: op.addr,
				capBlocks:  op.size,
				generation: op.gen,
				flushedSeq: op.fseq,
			}
		} else {
			js := o.journal
			js.generation = op.gen
			js.flushedSeq = op.fseq
			js.tail = 0
			js.scanned = false
		}
		o.size = 0
	default:
		return fmt.Errorf("%w: unknown wal op %d", ErrCorrupt, op.kind)
	}
	return nil
}

// shrinkSlotsLocked retires page slots at and past the new size's last
// page, the metadata half of truncateLocked. The partial tail page needs no
// zeroing here: the live truncation already published the zeroed page as a
// preceding page op. Requires mu.
func (s *Store) shrinkSlotsLocked(o *object, size int64) error {
	lastPg := (size + BlockSize - 1) / BlockSize
	cis := make([]int64, 0, len(o.chunks))
	for ci := range o.chunks {
		cis = append(cis, ci)
	}
	sortInt64s(cis)
	for _, ci := range cis {
		first := ci * ChunkFanout
		if first+ChunkFanout <= lastPg {
			continue
		}
		c, err := s.loadChunk(o, first, false)
		if err != nil {
			return err
		}
		if c == nil {
			continue
		}
		empty := true
		for slot := int64(0); slot < ChunkFanout; slot++ {
			pg := first + slot
			if pg >= lastPg {
				if c.addrs[slot] != 0 {
					s.retireBlock(c.addrs[slot])
					c.addrs[slot] = 0
					c.sums[slot] = 0
					c.dirty = true
				}
			} else if c.addrs[slot] != 0 {
				empty = false
			}
		}
		if empty && first >= lastPg {
			s.retireBlock(c.addr)
			delete(o.chunks, ci)
		}
	}
	return nil
}
