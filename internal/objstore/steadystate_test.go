package objstore

import (
	"testing"

	"aurora/internal/clock"
	"aurora/internal/device"
)

// Regression: an idle store checkpointing forever must reach a steady
// state — the freelist (serialized into every index) must not snowball.
func TestIdleCheckpointSteadyState(t *testing.T) {
	clk := clock.NewVirtual()
	costs := clock.DefaultCosts()
	dev := device.NewStripe(clk, costs, 4, 64<<10, 1<<30)
	s, err := Format(dev, clk, costs)
	if err != nil {
		t.Fatal(err)
	}
	oid := s.NewOID()
	s.PutRecord(oid, 1, make([]byte, 500))
	page := make([]byte, BlockSize)
	for i := 0; i < 200; i++ {
		s.PutRecord(oid, 1, page[:500]) // same small record each epoch
		if _, err := s.Checkpoint(); err != nil {
			t.Fatal(err)
		}
		s.ReleaseCheckpointsBefore(s.Epoch())
	}
	if got := s.FreeBlocks(); got > 64 {
		t.Fatalf("freelist = %d after 200 idle epochs; metadata not recycling", got)
	}
	rep := s.Fsck()
	if !rep.OK() {
		t.Fatalf("fsck: %v", rep.Problems)
	}
}
