// Package objstore implements the Aurora object store (§7 of the paper): a
// copy-on-write store designed for high-frequency, low-latency checkpoints.
//
// Objects are named by 64-bit object identifiers (OIDs) and represent POSIX
// objects, memory objects, or files — all identically, which is what lets
// Aurora preserve relationships between them. Data is never modified in
// place (the one exception is journal objects, which exist precisely to give
// the Aurora API a synchronous non-COW path). A checkpoint becomes visible
// only when its superblock is durably written, so recovery always lands on
// the last complete checkpoint. Retained checkpoints form the application's
// execution history; releasing history is a deadlist scan, not a
// log-structured cleaning pass.
//
// On-device layout:
//
//	block 0,1:  alternating superblocks (commit points)
//	block 2..:  reserved WAL region (walBlocksFor blocks) — a ring of
//	            CRC-framed delta records for WAL-first commits (see wal.go)
//	after WAL:  COW blocks — data pages, block-map chunks, object records,
//	            checkpoint indexes — plus preallocated journal extents
//
// Each checkpoint writes: new data blocks (already submitted asynchronously
// during the interval), block-map chunks for modified objects, one record
// per modified object, and one index enumerating every object record and
// the allocator state. The superblock points at the index. Between
// checkpoints, WALCommit makes the interval durable early by appending one
// delta frame to the WAL region; a later checkpoint folds the frames away.
package objstore

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"aurora/internal/clock"
	"aurora/internal/flight"
	"aurora/internal/mem"
	"aurora/internal/trace"
)

// OID names an object in the store.
type OID uint64

// FlightOID is the reserved object holding the serialized flight-recorder
// ring. It sits at the top of the OID space, out of reach of the bump
// allocator, and is rewritten on every checkpoint (see Checkpoint).
const FlightOID = OID(flight.StoreOID)

// Epoch numbers checkpoints; epoch 0 is the formatted-empty state.
type Epoch uint64

// BlockSize is the store's allocation unit, one page.
const BlockSize = mem.PageSize

// ChunkFanout is the number of page slots per block-map chunk. Each slot
// carries an 8-byte block address plus a 4-byte CRC of the page's content
// (so fsck can detect torn or rotted data pages), and the chunk ends in a
// 4-byte whole-chunk CRC: 341 twelve-byte slots plus the seal fill one
// 4096-byte block exactly.
const ChunkFanout = BlockSize / 12

// InlineMax is the largest object record payload kept inline in the record
// instead of in data blocks. POSIX object records — including outliers like
// a kqueue with a thousand registered events (~35 KiB) — stay inline, so a
// record is always one contiguous read.
const InlineMax = 64 << 10

// Errors returned by the store.
var (
	ErrNoObject   = errors.New("objstore: no such object")
	ErrNoEpoch    = errors.New("objstore: no such checkpoint")
	ErrCorrupt    = errors.New("objstore: corrupt metadata")
	ErrNotJournal = errors.New("objstore: object is not a journal")
	ErrIsJournal  = errors.New("objstore: object is a journal")
	ErrFull       = errors.New("objstore: device full")
)

// BlockDev is the storage a store runs on; *device.Stripe and *device.Device
// both satisfy it.
type BlockDev interface {
	ReadAt(p []byte, off int64) (int, error)
	WriteAt(p []byte, off int64) (int, error)
	SubmitWrite(p []byte, off int64) (time.Duration, error)
	SubmitWriteAfter(p []byte, off int64, after time.Duration) (time.Duration, error)
	SubmitWritev(bufs [][]byte, off int64) (time.Duration, error)
	SubmitWritevAfter(bufs [][]byte, off int64, after time.Duration) (time.Duration, error)
	SubmitRead(p []byte, off int64) (time.Duration, error)
	WaitUntil(t time.Duration)
	Flush()
	Size() int64
}

// deadBlock is a block awaiting garbage collection: it was born at (first
// referenced by) checkpoint birth and superseded at freedAt; it may be
// reused once no retained checkpoint epoch falls in [birth, freedAt).
type deadBlock struct {
	addr    int64
	birth   Epoch
	freedAt Epoch
}

// blockRun is a contiguous run of blocks in the metadata pool.
type blockRun struct {
	addr int64
	n    int64
}

// stagedRelease is one commit's worth of released blocks, allocatable once
// virtual time reaches at (the releasing superblock's completion).
type stagedRelease struct {
	at   time.Duration
	data []int64
	meta []blockRun
}

// ckptInfo describes one retained checkpoint.
type ckptInfo struct {
	epoch     Epoch
	indexAddr int64
	indexLen  int64
}

// object is the live, in-memory state of one store object.
type object struct {
	oid   OID
	utype uint16
	size  int64

	// Exactly one of these shapes applies:
	inline  []byte           // small record payload
	chunks  map[int64]*chunk // block-map chunks by chunk index
	journal *journalState    // non-COW journal extent

	dirty      bool  // modified since last checkpoint
	birth      Epoch // epoch the object was created in
	recordAddr int64 // where the last committed record lives
	recordLen  int64
}

// chunk is one cached/modified block-map chunk.
type chunk struct {
	addrs  [ChunkFanout]int64  // 0 = hole
	sums   [ChunkFanout]uint32 // CRC-32 of each slot's page content
	dirty  bool
	loaded bool  // addrs valid (vs. lazily loadable from addr)
	addr   int64 // committed location; 0 if never written
}

// Stats summarizes store activity.
type Stats struct {
	Checkpoints     int64
	ObjectsLive     int64
	BlocksAllocated int64
	BlocksFreed     int64
	MetaBytes       int64
	DataBytes       int64
}

// Store is the Aurora object store.
type Store struct {
	mu    sync.Mutex
	dev   BlockDev
	clk   clock.Clock
	costs *clock.Costs
	tr    *trace.Tracer
	fl    *flight.Recorder

	// settled notes epochs whose durability has been waited on, so the
	// flight ring records one settle event per epoch, not one per wait.
	settled map[Epoch]bool

	epoch    Epoch // last committed epoch
	nextOID  OID
	nextBlk  int64
	freelist []int64
	deadlist []deadBlock
	retained []ckptInfo

	// birthOf tracks the epoch in which blocks allocated during this
	// session were born; blocks loaded from committed metadata default to
	// birth 0 (conservatively "as old as any retained checkpoint").
	birthOf map[int64]Epoch

	// metaFree recycles released checkpoints' index runs. It is kept in
	// memory only, NEVER serialized: an index must not describe its own
	// storage, or the metadata describing the free space grows with the
	// free space and compounds exponentially. After a crash the pool is
	// simply empty (a bounded, documented leak of a few dozen blocks).
	metaFree []blockRun

	// releasing/releasingMeta stage blocks freed by ReleaseCheckpointsBefore
	// until the next superblock lands. Handing them straight to the
	// allocator would let this interval overwrite blocks that a crash —
	// recovering to the still-on-device previous superblock, whose retained
	// list references the released history — needs intact. The next commit
	// serializes `releasing` into its freelist and moves both lists onto
	// releaseQ, stamped with the committing superblock's durability time.
	releasing     []int64
	releasingMeta []blockRun

	// releaseQ holds releases whose omitting superblock has been submitted
	// but may still sit in a device queue. Only once virtual time passes the
	// superblock's completion can a power cut no longer resurrect the old
	// index that references these blocks — promotion to the allocatable
	// pools (freelist/metaFree) is gated on that instant, not on submit.
	releaseQ []stagedRelease

	objects map[OID]*object
	deleted map[OID]bool // deleted since last checkpoint (must leave index)

	// pendingDurable is the completion time of the latest submitted write
	// belonging to the in-progress interval; the next commit waits for it.
	pendingDurable time.Duration
	// durableAt maps committed epochs to their durability times.
	durableAt map[Epoch]time.Duration

	superSlot int // which superblock slot the next commit uses

	// WAL-first commit state (see wal.go). walBase/walBlocks fix the
	// reserved region's geometry at Format time; walHead is the append
	// offset within it; walSeq numbers this generation's committed frames
	// (reset to 0 by every fold); walPending accumulates the interval's
	// delta ops; walDurable maps frame seqs to durability times.
	walBase     int64
	walBlocks   int64
	walHead     int64
	walSeq      uint64
	walPending  []walOp
	walDurable  map[uint64]time.Duration
	walReplayed int // frames replayed by the last Recover

	// pendingWALReset defers the head reset (log-structured GC of the
	// folded generation) until virtual time passes walResetAt, the folding
	// superblock's completion: before that instant a crash can still
	// recover to the previous superblock, which needs the old frames.
	pendingWALReset bool
	walResetAt      time.Duration

	// replaying suppresses walNote while walRecover drives the regular
	// locked mutators, so replay does not re-log itself.
	replaying bool

	// lastDurable is the previous durability point (WAL frame or
	// superblock), feeding the durable-window histogram.
	lastDurable time.Duration

	stats Stats
}

// Format initializes an empty store on dev, committing epoch 0.
func Format(dev BlockDev, clk clock.Clock, costs *clock.Costs) (*Store, error) {
	s := &Store{
		dev:        dev,
		clk:        clk,
		costs:      costs,
		nextOID:    1,
		walBase:    2 * BlockSize, // blocks 0,1 are superblocks
		walBlocks:  walBlocksFor(dev.Size()),
		objects:    make(map[OID]*object),
		deleted:    make(map[OID]bool),
		durableAt:  make(map[Epoch]time.Duration),
		walDurable: make(map[uint64]time.Duration),
		birthOf:    make(map[int64]Epoch),
		settled:    make(map[Epoch]bool),
	}
	s.nextBlk = s.dataStart() / BlockSize
	if _, err := s.Checkpoint(); err != nil {
		return nil, err
	}
	// mkfs returns only once the empty filesystem is durable: a power cut
	// the instant after Format must still find a valid superblock.
	if err := s.WaitDurable(s.epoch); err != nil {
		return nil, err
	}
	return s, nil
}

// Recover opens the store from the last complete checkpoint on dev. All
// uncommitted state (the paper's crash case) is invisible.
func Recover(dev BlockDev, clk clock.Clock, costs *clock.Costs) (*Store, error) {
	s := &Store{
		dev:        dev,
		clk:        clk,
		costs:      costs,
		objects:    make(map[OID]*object),
		deleted:    make(map[OID]bool),
		durableAt:  make(map[Epoch]time.Duration),
		walDurable: make(map[uint64]time.Duration),
		birthOf:    make(map[int64]Epoch),
		settled:    make(map[Epoch]bool),
	}
	sb, slot, err := s.readSuperblocks()
	if err != nil {
		return nil, err
	}
	s.superSlot = 1 - slot // next commit goes to the other slot
	s.walBase = sb.walBase
	s.walBlocks = sb.walBlocks
	if err := s.loadIndex(sb.indexAddr, sb.indexLen); err != nil {
		return nil, err
	}
	s.epoch = sb.epoch
	// Replay any WAL frames committed on top of the recovered checkpoint:
	// they are durable state the superblock alone does not describe.
	if err := s.walRecover(); err != nil {
		return nil, err
	}
	return s, nil
}

// SetTracer attaches tr to the store; nil disables tracing. Wire it at
// build time — it is not synchronized against in-flight operations.
func (s *Store) SetTracer(tr *trace.Tracer) { s.tr = tr }

// SetFlight attaches the flight recorder; nil disables it. Each Checkpoint
// serializes the ring into FlightOID before committing, so the recent event
// history persists and replicates with the rest of the store. Wire it at
// build time, like the tracer.
func (s *Store) SetFlight(fl *flight.Recorder) { s.fl = fl }

// Flight returns the attached flight recorder (nil if none).
func (s *Store) Flight() *flight.Recorder { return s.fl }

// RecoveredFlight decodes the flight ring persisted by the last committed
// checkpoint: the pre-crash forensic timeline after a recovery. It returns
// the events oldest-first plus the recorder's sequence number at snapshot
// time; ok is false if no flight object was ever committed.
func (s *Store) RecoveredFlight() (evs []flight.Event, seq uint64, ok bool, err error) {
	s.mu.Lock()
	_, exists := s.objects[FlightOID]
	s.mu.Unlock()
	if !exists {
		return nil, 0, false, nil
	}
	buf, err := s.GetRecord(FlightOID)
	if err != nil {
		return nil, 0, true, err
	}
	evs, seq, err = flight.Decode(buf)
	return evs, seq, true, err
}

// ReopenAfterCrash abandons this store's in-memory state and re-runs crash
// recovery against the same device — what a reboot does. The receiver must
// not be used afterwards. Fault-injection harnesses call this after the
// device comes back from a simulated power cut.
func (s *Store) ReopenAfterCrash() (*Store, error) {
	return Recover(s.dev, s.clk, s.costs)
}

// Epoch returns the last committed checkpoint epoch.
func (s *Store) Epoch() Epoch {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.epoch
}

// curEpoch is the epoch the in-progress interval will commit as. Requires mu.
func (s *Store) curEpoch() Epoch { return s.epoch + 1 }

// PendingDurable reports the virtual completion time of the latest
// asynchronous write submitted to the device — the write-behind horizon.
// Callers use it for flow control (bounding dirty data in flight).
func (s *Store) PendingDurable() time.Duration {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.pendingDurable
}

// NewOID allocates a fresh object identifier.
func (s *Store) NewOID() OID {
	s.mu.Lock()
	defer s.mu.Unlock()
	oid := s.nextOID
	s.nextOID++
	return oid
}

// Stats returns a snapshot of store counters.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.stats
	st.ObjectsLive = int64(len(s.objects))
	return st
}

// Objects lists live OIDs in ascending order.
func (s *Store) Objects() []OID {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]OID, 0, len(s.objects))
	for oid := range s.objects {
		out = append(out, oid)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// lookup requires mu.
func (s *Store) lookup(oid OID) (*object, error) {
	o, ok := s.objects[oid]
	if !ok {
		return nil, fmt.Errorf("%w: %d", ErrNoObject, oid)
	}
	return o, nil
}

// ensure returns the object, creating it if absent. Requires mu.
func (s *Store) ensure(oid OID, utype uint16) *object {
	o, ok := s.objects[oid]
	if !ok {
		o = &object{oid: oid, utype: utype, birth: s.curEpoch()}
		s.objects[oid] = o
		// Reserved OIDs at the very top of the space (FlightOID) must not
		// bump the allocator: oid+1 would wrap to 0 and restart allocation
		// over live objects.
		if oid >= s.nextOID && oid+1 != 0 {
			s.nextOID = oid + 1
		}
		delete(s.deleted, oid)
	}
	o.dirty = true
	return o
}
