package objstore

// Binary encoding for on-device metadata: object records, checkpoint
// indexes, and superblocks. All integers are little-endian; every structure
// ends in a CRC-32 so recovery can reject torn or stale metadata.

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
)

// Magic numbers for the on-device structures.
const (
	magicSuper  = 0x41525342 // "ARSB"
	magicIndex  = 0x41524958 // "ARIX"
	magicRecord = 0x41524F42 // "AROB"
	magicFrame  = 0x4152464D // "ARFM"
	magicWAL    = 0x4152574C // "ARWL"
)

// Object shapes stored in records.
const (
	shapeInline  = 1
	shapeChunks  = 2
	shapeJournal = 3
)

// enc is an append-only little-endian encoder.
type enc struct{ b []byte }

func (e *enc) u8(v uint8)   { e.b = append(e.b, v) }
func (e *enc) u16(v uint16) { e.b = binary.LittleEndian.AppendUint16(e.b, v) }
func (e *enc) u32(v uint32) { e.b = binary.LittleEndian.AppendUint32(e.b, v) }
func (e *enc) u64(v uint64) { e.b = binary.LittleEndian.AppendUint64(e.b, v) }
func (e *enc) i64(v int64)  { e.u64(uint64(v)) }
func (e *enc) bytes(p []byte) {
	e.u32(uint32(len(p)))
	e.b = append(e.b, p...)
}

// seal appends the CRC of everything encoded so far.
func (e *enc) seal() []byte {
	e.u32(crc32.ChecksumIEEE(e.b))
	return e.b
}

// dec is a sequential little-endian decoder.
type dec struct {
	b   []byte
	off int
	err error
}

func newDec(b []byte) (*dec, error) {
	if len(b) < 4 {
		return nil, fmt.Errorf("%w: short buffer", ErrCorrupt)
	}
	body, sum := b[:len(b)-4], binary.LittleEndian.Uint32(b[len(b)-4:])
	if crc32.ChecksumIEEE(body) != sum {
		return nil, fmt.Errorf("%w: checksum mismatch", ErrCorrupt)
	}
	return &dec{b: body}, nil
}

func (d *dec) fail() {
	if d.err == nil {
		d.err = fmt.Errorf("%w: truncated structure", ErrCorrupt)
	}
}

func (d *dec) u8() uint8 {
	if d.off+1 > len(d.b) {
		d.fail()
		return 0
	}
	v := d.b[d.off]
	d.off++
	return v
}

func (d *dec) u16() uint16 {
	if d.off+2 > len(d.b) {
		d.fail()
		return 0
	}
	v := binary.LittleEndian.Uint16(d.b[d.off:])
	d.off += 2
	return v
}

func (d *dec) u32() uint32 {
	if d.off+4 > len(d.b) {
		d.fail()
		return 0
	}
	v := binary.LittleEndian.Uint32(d.b[d.off:])
	d.off += 4
	return v
}

func (d *dec) u64() uint64 {
	if d.off+8 > len(d.b) {
		d.fail()
		return 0
	}
	v := binary.LittleEndian.Uint64(d.b[d.off:])
	d.off += 8
	return v
}

func (d *dec) i64() int64 { return int64(d.u64()) }

func (d *dec) bytes() []byte {
	n := int(d.u32())
	if d.err != nil || d.off+n > len(d.b) {
		d.fail()
		return nil
	}
	v := d.b[d.off : d.off+n : d.off+n]
	d.off += n
	return v
}

// encodeRecord serializes one object's committed state.
func encodeRecord(o *object) []byte {
	var e enc
	e.u32(magicRecord)
	e.u64(uint64(o.oid))
	e.u16(o.utype)
	e.i64(o.size)
	switch {
	case o.journal != nil:
		e.u8(shapeJournal)
		e.i64(o.journal.extentAddr)
		e.i64(o.journal.capBlocks)
		e.u64(o.journal.generation)
		e.u64(o.journal.flushedSeq)
	case o.chunks != nil:
		e.u8(shapeChunks)
		// Chunk roots, sorted for determinism.
		idxs := sortedChunkIdxs(o)
		e.u32(uint32(len(idxs)))
		for _, ci := range idxs {
			e.i64(ci)
			e.i64(o.chunks[ci].addr)
		}
	default:
		e.u8(shapeInline)
		e.bytes(o.inline)
	}
	return e.seal()
}

func sortedChunkIdxs(o *object) []int64 {
	idxs := make([]int64, 0, len(o.chunks))
	for ci := range o.chunks {
		idxs = append(idxs, ci)
	}
	for i := 1; i < len(idxs); i++ { // insertion sort; chunk counts are small
		for j := i; j > 0 && idxs[j-1] > idxs[j]; j-- {
			idxs[j-1], idxs[j] = idxs[j], idxs[j-1]
		}
	}
	return idxs
}

// decodeRecord parses an object record. Chunk contents load lazily.
func decodeRecord(b []byte) (*object, error) {
	d, err := newDec(b)
	if err != nil {
		return nil, err
	}
	if d.u32() != magicRecord {
		return nil, fmt.Errorf("%w: bad record magic", ErrCorrupt)
	}
	o := &object{
		oid:   OID(d.u64()),
		utype: d.u16(),
		size:  d.i64(),
	}
	switch shape := d.u8(); shape {
	case shapeJournal:
		o.journal = &journalState{
			extentAddr: d.i64(),
			capBlocks:  d.i64(),
			generation: d.u64(),
			flushedSeq: d.u64(),
		}
	case shapeChunks:
		n := int(d.u32())
		o.chunks = make(map[int64]*chunk, n)
		for i := 0; i < n; i++ {
			ci := d.i64()
			addr := d.i64()
			o.chunks[ci] = &chunk{addr: addr, loaded: false}
		}
	case shapeInline:
		raw := d.bytes()
		o.inline = append([]byte(nil), raw...)
	default:
		return nil, fmt.Errorf("%w: unknown shape %d", ErrCorrupt, shape)
	}
	if d.err != nil {
		return nil, d.err
	}
	return o, nil
}

// encodeChunk serializes a block-map chunk into exactly one block: the
// address array, the per-slot page checksums, and a whole-chunk CRC in the
// final four bytes so recovery and fsck can reject a torn or rotted chunk
// outright.
func encodeChunk(c *chunk) []byte {
	b := make([]byte, BlockSize)
	for i, a := range c.addrs {
		binary.LittleEndian.PutUint64(b[i*8:], uint64(a))
	}
	sumsOff := ChunkFanout * 8
	for i, s := range c.sums {
		binary.LittleEndian.PutUint32(b[sumsOff+i*4:], s)
	}
	binary.LittleEndian.PutUint32(b[BlockSize-4:], crc32.ChecksumIEEE(b[:BlockSize-4]))
	return b
}

// decodeChunk fills a chunk's address and checksum arrays from one block,
// rejecting it if the chunk CRC does not match.
func decodeChunk(c *chunk, b []byte) error {
	if want := binary.LittleEndian.Uint32(b[BlockSize-4:]); crc32.ChecksumIEEE(b[:BlockSize-4]) != want {
		return fmt.Errorf("%w: chunk checksum mismatch", ErrCorrupt)
	}
	for i := range c.addrs {
		c.addrs[i] = int64(binary.LittleEndian.Uint64(b[i*8:]))
	}
	sumsOff := ChunkFanout * 8
	for i := range c.sums {
		c.sums[i] = binary.LittleEndian.Uint32(b[sumsOff+i*4:])
	}
	c.loaded = true
	return nil
}

// indexState is the decoded form of a checkpoint index.
type indexState struct {
	epoch    Epoch
	nextOID  OID
	nextBlk  int64
	freelist []int64
	deadlist []deadBlock
	retained []ckptInfo
	objects  []indexEntry
}

type indexEntry struct {
	oid  OID
	addr int64
	len  int64
}

// encodeIndex serializes a checkpoint index, returning the unsealed body.
// The caller encodes from post-allocation state (the index's own blocks are
// allocated before the final encode), so no field patching is needed.
func encodeIndex(st *indexState) *enc {
	var e enc
	e.u32(magicIndex)
	e.u64(uint64(st.epoch))
	e.u64(uint64(st.nextOID))
	e.i64(st.nextBlk)
	e.u32(uint32(len(st.freelist)))
	for _, a := range st.freelist {
		e.i64(a)
	}
	e.u32(uint32(len(st.deadlist)))
	for _, db := range st.deadlist {
		e.i64(db.addr)
		e.u64(uint64(db.birth))
		e.u64(uint64(db.freedAt))
	}
	e.u32(uint32(len(st.retained)))
	for _, c := range st.retained {
		e.u64(uint64(c.epoch))
		e.i64(c.indexAddr)
		e.i64(c.indexLen)
	}
	e.u32(uint32(len(st.objects)))
	for _, o := range st.objects {
		e.u64(uint64(o.oid))
		e.i64(o.addr)
		e.i64(o.len)
	}
	return &e
}

// decodeIndex parses a checkpoint index.
func decodeIndex(b []byte) (*indexState, error) {
	d, err := newDec(b)
	if err != nil {
		return nil, err
	}
	if d.u32() != magicIndex {
		return nil, fmt.Errorf("%w: bad index magic", ErrCorrupt)
	}
	st := &indexState{
		epoch:   Epoch(d.u64()),
		nextOID: OID(d.u64()),
		nextBlk: d.i64(),
	}
	for i, n := 0, int(d.u32()); i < n && d.err == nil; i++ {
		st.freelist = append(st.freelist, d.i64())
	}
	for i, n := 0, int(d.u32()); i < n && d.err == nil; i++ {
		st.deadlist = append(st.deadlist, deadBlock{
			addr: d.i64(), birth: Epoch(d.u64()), freedAt: Epoch(d.u64()),
		})
	}
	for i, n := 0, int(d.u32()); i < n && d.err == nil; i++ {
		st.retained = append(st.retained, ckptInfo{
			epoch: Epoch(d.u64()), indexAddr: d.i64(), indexLen: d.i64(),
		})
	}
	for i, n := 0, int(d.u32()); i < n && d.err == nil; i++ {
		st.objects = append(st.objects, indexEntry{
			oid: OID(d.u64()), addr: d.i64(), len: d.i64(),
		})
	}
	if d.err != nil {
		return nil, d.err
	}
	return st, nil
}

// superblock is the commit point. It also fixes the WAL region geometry,
// so recovery never has to re-derive it from the device size.
type superblock struct {
	epoch     Epoch
	indexAddr int64
	indexLen  int64
	walBase   int64
	walBlocks int64
}

// encodeSuperblock fills one block.
func encodeSuperblock(sb superblock) []byte {
	var e enc
	e.u32(magicSuper)
	e.u64(uint64(sb.epoch))
	e.i64(sb.indexAddr)
	e.i64(sb.indexLen)
	e.i64(sb.walBase)
	e.i64(sb.walBlocks)
	body := e.seal()
	out := make([]byte, BlockSize)
	copy(out, body)
	return out
}

// decodeSuperblock parses a superblock slot; ok is false for blank or
// corrupt slots.
func decodeSuperblock(b []byte) (superblock, bool) {
	const bodyLen = 4 + 8 + 8 + 8 + 8 + 8 + 4
	if len(b) < bodyLen {
		return superblock{}, false
	}
	d, err := newDec(b[:bodyLen])
	if err != nil {
		return superblock{}, false
	}
	if d.u32() != magicSuper {
		return superblock{}, false
	}
	sb := superblock{
		epoch:     Epoch(d.u64()),
		indexAddr: d.i64(),
		indexLen:  d.i64(),
		walBase:   d.i64(),
		walBlocks: d.i64(),
	}
	if d.err != nil {
		return superblock{}, false
	}
	return sb, true
}
