package objstore

import (
	"fmt"
	"hash/crc32"
	"sort"
	"time"

	"aurora/internal/trace"
)

// Batched page writes: the checkpoint flush pipeline's entry point into the
// store. A batch amortizes the store lock over many pages and splits the
// write into three phases so the expensive part — copying page payloads into
// the device — runs outside the store lock:
//
//  1. Reserve (under mu): look up the object, fault in or create the
//     block-map chunks the batch touches, and allocate one fresh COW block
//     per page.
//  2. Transfer (outside mu): submit every payload to the device. Member
//     devices of a stripe carry their own locks, so concurrent batches
//     overlap their copies the way NVMe queue depth allows.
//  3. Publish (under mu): swing the chunk slots to the new blocks, retire
//     the superseded ones, and advance the write-behind horizon.
//
// Readers that race a batch see the object's previous committed content
// until Publish — the same snapshot semantics a serial WritePage sequence
// gives, since a block is never reachable before its slot is swung.
//
// Concurrency: WritePages is safe for any number of concurrent callers.
// Callers writing the SAME page of the same object race (last publisher
// wins), exactly as racing WritePage calls do; the flush pipeline avoids
// this by construction, handing each destination object to one worker per
// epoch.

// PageWrite names one whole-page update in a batch.
type PageWrite struct {
	Pg   int64
	Data []byte // exactly BlockSize bytes, stable until WritePages returns
}

// batchPages bounds how many pages one reserve/publish phase covers, so a
// huge flush cannot hold the store lock for its full duration.
const batchPages = 256

// WritePages applies a batch of COW page writes to oid. Every page is
// allocated a fresh block (the old one, if any, is retired), and the device
// transfers are submitted asynchronously: durability is the interval
// commit's job, as with WritePage. It returns the number of bytes submitted.
func (s *Store) WritePages(oid OID, writes []PageWrite) (int64, error) {
	var bytes int64
	for len(writes) > 0 {
		n := len(writes)
		if n > batchPages {
			n = batchPages
		}
		if err := s.writePageBatch(oid, writes[:n]); err != nil {
			return bytes, err
		}
		bytes += int64(n) * BlockSize
		writes = writes[n:]
	}
	return bytes, nil
}

// writePageBatch runs the three-phase write for one bounded batch.
func (s *Store) writePageBatch(oid OID, writes []PageWrite) error {
	for _, w := range writes {
		if len(w.Data) != BlockSize {
			return fmt.Errorf("objstore: WritePages wants %d bytes, got %d", BlockSize, len(w.Data))
		}
	}

	var batchSpan, phaseSpan trace.Span
	if s.tr != nil {
		batchSpan = s.tr.Begin(trace.TrackObjstore, "writepages",
			trace.I("oid", int64(oid)), trace.I("pages", int64(len(writes))))
		phaseSpan = batchSpan.Child("reserve")
	}

	// Phase 1: reserve blocks and chunks under the lock.
	s.mu.Lock()
	o, err := s.lookup(oid)
	if err != nil {
		s.mu.Unlock()
		return err
	}
	if o.journal != nil {
		s.mu.Unlock()
		return ErrIsJournal
	}
	if err := s.toPaged(o); err != nil {
		s.mu.Unlock()
		return err
	}
	chunks := make([]*chunk, len(writes))
	addrs := make([]int64, len(writes))
	for i, w := range writes {
		c, err := s.loadChunk(o, w.Pg, true)
		if err != nil {
			s.unreserve(addrs[:i])
			s.mu.Unlock()
			return err
		}
		a, err := s.allocBlock()
		if err != nil {
			s.unreserve(addrs[:i])
			s.mu.Unlock()
			return err
		}
		chunks[i] = c
		addrs[i] = a
	}
	s.mu.Unlock()
	if s.tr != nil {
		phaseSpan.End()
		phaseSpan = batchSpan.Child("transfer")
	}

	// Phase 2: device transfers, outside the store lock. The blocks are
	// fresh, so nothing can read them until phase 3 publishes — which also
	// means transfer order is free: the batch is walked in device-address
	// order and each contiguous block run becomes one vectored submit, so
	// per-page device commands collapse into per-run ones without staging a
	// contiguous copy. (The allocator hands sequential batches contiguous
	// runs: ascending from the bump region, descending off the freelist.)
	sums := make([]uint32, len(writes))
	for i, w := range writes {
		sums[i] = crc32.ChecksumIEEE(w.Data)
	}
	order := make([]int, len(writes))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return addrs[order[a]] < addrs[order[b]] })
	var done time.Duration
	submit := func(lo, hi int) error { // order[lo:hi] is one contiguous run
		var t time.Duration
		var err error
		if hi-lo == 1 {
			t, err = s.dev.SubmitWrite(writes[order[lo]].Data, addrs[order[lo]])
		} else {
			bufs := make([][]byte, hi-lo)
			for i := range bufs {
				bufs[i] = writes[order[lo+i]].Data
			}
			t, err = s.dev.SubmitWritev(bufs, addrs[order[lo]])
		}
		if err != nil {
			s.mu.Lock()
			s.unreserve(addrs)
			s.mu.Unlock()
			return err
		}
		if t > done {
			done = t
		}
		return nil
	}
	run := 0
	for i := 1; i < len(order); i++ {
		if addrs[order[i]] != addrs[order[i-1]]+BlockSize {
			if err := submit(run, i); err != nil {
				return err
			}
			run = i
		}
	}
	if err := submit(run, len(order)); err != nil {
		return err
	}
	if s.tr != nil {
		phaseSpan.End()
		phaseSpan = batchSpan.Child("publish")
	}

	// Phase 3: publish.
	s.mu.Lock()
	for i, w := range writes {
		slot := w.Pg % ChunkFanout
		c := chunks[i]
		s.retireBlock(c.addrs[slot])
		c.addrs[slot] = addrs[i]
		c.sums[slot] = sums[i]
		c.dirty = true
		if end := (w.Pg + 1) * BlockSize; end > o.size {
			o.size = end
		}
		s.walNote(walOp{kind: walOpPage, oid: oid, utype: o.utype, pg: w.Pg, addr: addrs[i], sum: sums[i]})
	}
	s.walNote(walOp{kind: walOpSize, oid: oid, size: o.size})
	o.dirty = true
	if done > s.pendingDurable {
		s.pendingDurable = done
	}
	s.stats.DataBytes += int64(len(writes)) * BlockSize
	s.mu.Unlock()
	if s.tr != nil {
		phaseSpan.End()
		batchSpan.End()
		s.tr.Count("objstore.data_bytes", int64(len(writes))*BlockSize)
	}
	return nil
}

// unreserve returns blocks reserved by a failed batch to the allocator.
// They were born this interval and never published, so they recycle
// immediately. Requires mu.
func (s *Store) unreserve(addrs []int64) {
	for _, a := range addrs {
		if a != 0 {
			s.retireBlock(a)
		}
	}
}
