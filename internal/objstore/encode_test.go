package objstore

import (
	"testing"
	"testing/quick"
)

func TestRecordCodecInline(t *testing.T) {
	o := &object{oid: 42, utype: 7, size: 11, inline: []byte("hello world")}
	b := encodeRecord(o)
	got, err := decodeRecord(b)
	if err != nil {
		t.Fatal(err)
	}
	if got.oid != 42 || got.utype != 7 || got.size != 11 || string(got.inline) != "hello world" {
		t.Fatalf("decoded %+v", got)
	}
}

func TestRecordCodecChunks(t *testing.T) {
	o := &object{
		oid:   7,
		utype: 2,
		size:  1 << 30,
		chunks: map[int64]*chunk{
			0:  {addr: 4096},
			3:  {addr: 8192},
			10: {addr: 12288},
		},
	}
	b := encodeRecord(o)
	got, err := decodeRecord(b)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.chunks) != 3 || got.chunks[3].addr != 8192 {
		t.Fatalf("chunks %+v", got.chunks)
	}
	if got.chunks[3].loaded {
		t.Fatal("decoded chunk claims to be loaded")
	}
}

func TestRecordCodecJournal(t *testing.T) {
	o := &object{
		oid:   9,
		utype: 9,
		journal: &journalState{
			extentAddr: 1 << 20,
			capBlocks:  256,
			generation: 5,
			flushedSeq: 1234,
		},
	}
	b := encodeRecord(o)
	got, err := decodeRecord(b)
	if err != nil {
		t.Fatal(err)
	}
	js := got.journal
	if js == nil || js.extentAddr != 1<<20 || js.capBlocks != 256 || js.generation != 5 || js.flushedSeq != 1234 {
		t.Fatalf("journal %+v", js)
	}
}

func TestRecordCodecRejectsCorruption(t *testing.T) {
	o := &object{oid: 1, utype: 1, inline: []byte("x")}
	b := encodeRecord(o)
	b[5] ^= 0xFF
	if _, err := decodeRecord(b); err == nil {
		t.Fatal("corrupt record decoded")
	}
	if _, err := decodeRecord(nil); err == nil {
		t.Fatal("nil decoded")
	}
	if _, err := decodeRecord([]byte{1, 2, 3}); err == nil {
		t.Fatal("short buffer decoded")
	}
}

func TestSuperblockCodec(t *testing.T) {
	sb := superblock{epoch: 17, indexAddr: 4096, indexLen: 999}
	b := encodeSuperblock(sb)
	if len(b) != BlockSize {
		t.Fatalf("superblock size %d", len(b))
	}
	got, ok := decodeSuperblock(b)
	if !ok || got != sb {
		t.Fatalf("decoded %+v ok=%v", got, ok)
	}
	// Blank and corrupt slots are rejected, not misread.
	if _, ok := decodeSuperblock(make([]byte, BlockSize)); ok {
		t.Fatal("blank slot decoded")
	}
	b[8] ^= 1
	if _, ok := decodeSuperblock(b); ok {
		t.Fatal("corrupt slot decoded")
	}
}

func TestIndexCodecRoundTrip(t *testing.T) {
	st := &indexState{
		epoch:    5,
		nextOID:  100,
		nextBlk:  777,
		freelist: []int64{4096, 8192},
		deadlist: []deadBlock{{addr: 12288, birth: 2, freedAt: 4}},
		retained: []ckptInfo{{epoch: 3, indexAddr: 16384, indexLen: 100}},
		objects:  []indexEntry{{oid: 9, addr: 20480, len: 50}},
	}
	e := encodeIndex(st)
	got, err := decodeIndex(e.seal())
	if err != nil {
		t.Fatal(err)
	}
	if got.epoch != 5 || got.nextOID != 100 || got.nextBlk != 777 {
		t.Fatalf("header %+v", got)
	}
	if len(got.freelist) != 2 || len(got.deadlist) != 1 || len(got.retained) != 1 || len(got.objects) != 1 {
		t.Fatalf("lists %+v", got)
	}
	if got.deadlist[0] != st.deadlist[0] || got.objects[0] != st.objects[0] {
		t.Fatal("entries mismatch")
	}
}

// Property: record codec round-trips arbitrary inline objects.
func TestRecordCodecProperty(t *testing.T) {
	f := func(oid uint64, utype uint16, data []byte) bool {
		if len(data) > InlineMax {
			data = data[:InlineMax]
		}
		o := &object{oid: OID(oid), utype: utype, size: int64(len(data)), inline: data}
		got, err := decodeRecord(encodeRecord(o))
		if err != nil {
			return false
		}
		return got.oid == o.oid && got.utype == o.utype && got.size == o.size &&
			string(got.inline) == string(data)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
