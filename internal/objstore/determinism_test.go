package objstore

// Forensic report determinism: Fsck and AuditLive output feeds scenario
// assertions and result fingerprints, so problem ordering must be identical
// run to run and instance to instance — reports walk sorted OID/epoch keys,
// never raw map order. These tests corrupt several objects at once so a
// regression to map-order iteration has many orderings to land on.

import (
	"strings"
	"testing"
)

// buildDamagedStore creates a store with a spread of objects and journals,
// commits, then smashes several committed records and pages directly on the
// device — enough distinct problems that report ordering is observable.
func buildDamagedStore(t *testing.T) *Store {
	t.Helper()
	s, _, _ := newStore(t)
	var oids []OID
	for i := 0; i < 12; i++ {
		oid := s.NewOID()
		oids = append(oids, oid)
		if i%4 == 3 {
			if _, err := s.CreateJournal(oid, 9, 64<<10); err != nil {
				t.Fatal(err)
			}
			continue
		}
		if err := s.PutRecord(oid, 1, []byte(strings.Repeat("r", 40+i))); err != nil {
			t.Fatal(err)
		}
		s.Ensure(oid, 2)
		page := make([]byte, BlockSize)
		page[0] = byte(i)
		for pg := int64(0); pg < 4; pg++ {
			if err := s.WritePage(oid, pg, page); err != nil {
				t.Fatal(err)
			}
		}
	}
	if _, err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}

	garbage := make([]byte, BlockSize)
	for i := range garbage {
		garbage[i] = 0x5A
	}
	// Corrupt records of three objects and a data page of two more, in an
	// order unrelated to OID order.
	for _, i := range []int{8, 1, 5} {
		s.mu.Lock()
		addr := s.objects[oids[i]].recordAddr
		s.mu.Unlock()
		if _, err := s.dev.WriteAt(garbage, addr); err != nil {
			t.Fatal(err)
		}
	}
	for _, i := range []int{9, 2} {
		addr := pageAddr(t, s, oids[i], 1)
		if _, err := s.dev.WriteAt(garbage, addr); err != nil {
			t.Fatal(err)
		}
	}
	return s
}

func TestFsckAuditReportDeterminism(t *testing.T) {
	s := buildDamagedStore(t)

	rep1 := s.Fsck()
	rep2 := s.Fsck()
	if rep1.OK() {
		t.Fatal("damaged store fscks clean")
	}
	if len(rep1.Problems) < 5 {
		t.Fatalf("expected >= 5 problems, got %d: %v", len(rep1.Problems), rep1.Problems)
	}
	if got, want := strings.Join(rep2.Problems, "\n"), strings.Join(rep1.Problems, "\n"); got != want {
		t.Fatalf("same store, two fsck runs, different reports:\n--- run 1\n%s\n--- run 2\n%s", want, got)
	}
	a1 := strings.Join(s.AuditLive(), "\n")
	a2 := strings.Join(s.AuditLive(), "\n")
	if a1 != a2 {
		t.Fatalf("same store, two audit runs, different reports:\n--- run 1\n%s\n--- run 2\n%s", a1, a2)
	}

	// A separately-built identical store must render the identical report —
	// the cross-instance check map iteration order cannot survive.
	s2 := buildDamagedStore(t)
	rep3 := s2.Fsck()
	if got, want := strings.Join(rep3.Problems, "\n"), strings.Join(rep1.Problems, "\n"); got != want {
		t.Fatalf("identical stores, different fsck reports:\n--- store 1\n%s\n--- store 2\n%s", want, got)
	}
	if a3 := strings.Join(s2.AuditLive(), "\n"); a3 != a1 {
		t.Fatalf("identical stores, different audit reports:\n--- store 1\n%s\n--- store 2\n%s", a1, a3)
	}
}
