package objstore_test

// Crash tests drive the store through the faultdev wrapper: crashes happen
// at the device (a power cut dropping the superblock write) instead of via
// an in-store hook, so the commit protocol is exercised exactly as a real
// power loss would. External test package: faultdev imports objstore for
// its harness, so in-package tests cannot import it back.

import (
	"fmt"
	"testing"
	"testing/quick"

	"aurora/internal/clock"
	"aurora/internal/device"
	"aurora/internal/faultdev"
	"aurora/internal/objstore"
)

// newFaultStore builds a store on a stripe wrapped in a disarmed faultdev.
func newFaultStore(t testing.TB, perDev int64) (*objstore.Store, *faultdev.Dev, *clock.Virtual, *clock.Costs) {
	t.Helper()
	clk := clock.NewVirtual()
	costs := clock.DefaultCosts()
	stripe := device.NewStripe(clk, costs, 4, 64<<10, perDev)
	fd := faultdev.New(stripe, clk, faultdev.Plan{CutAtSubmit: -1})
	s, err := objstore.Format(fd, clk, costs)
	if err != nil {
		t.Fatal(err)
	}
	return s, fd, clk, costs
}

// superblockCut arms a crash on the next write touching the superblock
// region: the checkpoint writes all its data and metadata, then dies on
// the commit point — the old "injected crash before commit", expressed as
// a device fault.
func superblockCut(fd *faultdev.Dev) {
	fd.Arm(faultdev.Plan{CutAtSubmit: -1, CutOffLo: 0, CutOffHi: 2 * objstore.BlockSize})
}

// Crash-injection property: under any interleaving of writes, checkpoints,
// torn checkpoints (power cut on the superblock write), and recoveries,
// the store always reads back exactly the state of the last *complete*
// checkpoint plus any post-checkpoint writes that were reapplied.
func TestTornCheckpointProperty(t *testing.T) {
	type step struct {
		Write uint8 // page index selector
		Val   byte
		Op    uint8 // 0 write, 1 checkpoint, 2 torn checkpoint + recover, 3 recover
	}
	f := func(steps []step) bool {
		clk := clock.NewVirtual()
		costs := clock.DefaultCosts()
		dev := device.NewStripe(clk, costs, 4, 64<<10, 256<<20)
		fd := faultdev.New(dev, clk, faultdev.Plan{CutAtSubmit: -1})
		s, err := objstore.Format(fd, clk, costs)
		if err != nil {
			return false
		}
		oid := s.NewOID()
		s.Ensure(oid, 2)
		if _, err := s.Checkpoint(); err != nil {
			return false
		}
		committed := map[uint8]byte{}
		live := map[uint8]byte{}
		page := make([]byte, objstore.BlockSize)
		recover := func() bool {
			fd.Reopen()
			s2, err := objstore.Recover(fd, clk, costs)
			if err != nil {
				return false
			}
			s = s2
			live = map[uint8]byte{}
			for k, v := range committed {
				live[k] = v
			}
			return true
		}
		for _, st := range steps {
			switch st.Op % 4 {
			case 0:
				pg := int64(st.Write % 32)
				page[0] = st.Val
				if err := s.WritePage(oid, pg, page); err != nil {
					return false
				}
				live[st.Write%32] = st.Val
			case 1:
				if _, err := s.Checkpoint(); err != nil {
					return false
				}
				committed = map[uint8]byte{}
				for k, v := range live {
					committed[k] = v
				}
			case 2:
				superblockCut(fd)
				if _, err := s.Checkpoint(); err == nil {
					return false // the power cut must surface
				}
				if !recover() {
					return false
				}
			case 3:
				if !recover() {
					return false
				}
			}
		}
		for pg, want := range live {
			found, err := s.ReadPage(oid, int64(pg), page)
			if err != nil || !found || page[0] != want {
				return false
			}
		}
		rep := s.Fsck()
		return rep.OK()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestCrashBeforeCommitKeepsPreviousCheckpoint(t *testing.T) {
	s, fd, clk, costs := newFaultStore(t, 128<<20)
	oid := s.NewOID()
	s.PutRecord(oid, 1, []byte("v1"))
	if _, err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	s.PutRecord(oid, 1, []byte("v2"))
	superblockCut(fd)
	if _, err := s.Checkpoint(); err == nil {
		t.Fatal("power cut on superblock did not surface")
	}
	fd.Reopen()
	s2, err := objstore.Recover(fd, clk, costs)
	if err != nil {
		t.Fatal(err)
	}
	if got, _ := s2.GetRecord(oid); string(got) != "v1" {
		t.Fatalf("after torn checkpoint got %q, want v1", got)
	}
	if s2.Epoch() != 2 {
		t.Fatalf("epoch = %d, want 2", s2.Epoch())
	}
}

// A store dies mid-checkpoint, and ReopenAfterCrash brings up a fresh
// store over the same device without the caller juggling dev/clk/costs.
func TestReopenAfterCrash(t *testing.T) {
	s, fd, _, _ := newFaultStore(t, 128<<20)
	oid := s.NewOID()
	s.PutRecord(oid, 1, []byte("stable"))
	if _, err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	s.PutRecord(oid, 1, []byte("doomed"))
	superblockCut(fd)
	if _, err := s.Checkpoint(); err == nil {
		t.Fatal("power cut did not surface")
	}
	fd.Reopen()
	s2, err := s.ReopenAfterCrash()
	if err != nil {
		t.Fatal(err)
	}
	if got, _ := s2.GetRecord(oid); string(got) != "stable" {
		t.Fatalf("recovered %q, want stable", got)
	}
	if rep := s2.Fsck(); !rep.OK() {
		t.Fatalf("fsck after reopen: %v", rep.Problems)
	}
}

func TestViewImmutabilityProperty(t *testing.T) {
	clk := clock.NewVirtual()
	costs := clock.DefaultCosts()
	dev := device.NewStripe(clk, costs, 4, 64<<10, 512<<20)
	s, err := objstore.Format(dev, clk, costs)
	if err != nil {
		t.Fatal(err)
	}
	oid := s.NewOID()
	s.Ensure(oid, 2)
	page := make([]byte, objstore.BlockSize)

	// Build 10 epochs, each stamping pages with the epoch number.
	type snap struct {
		epoch objstore.Epoch
		val   byte
	}
	var snaps []snap
	for e := byte(1); e <= 10; e++ {
		for pg := int64(0); pg < 8; pg++ {
			page[0] = e
			if err := s.WritePage(oid, pg, page); err != nil {
				t.Fatal(err)
			}
		}
		st, err := s.Checkpoint()
		if err != nil {
			t.Fatal(err)
		}
		snaps = append(snaps, snap{st.Epoch, e})
	}
	// Every retained view still reads its own epoch's stamp.
	for _, sn := range snaps {
		v, err := s.RestoreView(sn.epoch)
		if err != nil {
			t.Fatalf("epoch %d: %v", sn.epoch, err)
		}
		for pg := int64(0); pg < 8; pg++ {
			if _, err := v.ReadPage(oid, pg, page); err != nil {
				t.Fatal(err)
			}
			if page[0] != sn.val {
				t.Fatalf("epoch %d page %d = %d, want %d", sn.epoch, pg, page[0], sn.val)
			}
		}
	}
}

func TestRecoveryAfterManyEpochs(t *testing.T) {
	clk := clock.NewVirtual()
	costs := clock.DefaultCosts()
	dev := device.NewStripe(clk, costs, 4, 64<<10, 512<<20)
	s, err := objstore.Format(dev, clk, costs)
	if err != nil {
		t.Fatal(err)
	}
	oid := s.NewOID()
	for e := 0; e < 100; e++ {
		s.PutRecord(oid, 1, []byte(fmt.Sprintf("epoch-%d", e)))
		if _, err := s.Checkpoint(); err != nil {
			t.Fatal(err)
		}
		if e%10 == 0 {
			s.ReleaseCheckpointsBefore(s.Epoch())
		}
	}
	s2, err := objstore.Recover(dev, clk, costs)
	if err != nil {
		t.Fatal(err)
	}
	got, err := s2.GetRecord(oid)
	if err != nil || string(got) != "epoch-99" {
		t.Fatalf("got %q err=%v", got, err)
	}
}
