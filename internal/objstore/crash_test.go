package objstore

import (
	"fmt"
	"testing"
	"testing/quick"

	"aurora/internal/clock"
	"aurora/internal/device"
)

// Crash-injection property: under any interleaving of writes, checkpoints,
// torn checkpoints (crash before the superblock), and recoveries, the
// store always reads back exactly the state of the last *complete*
// checkpoint plus any post-checkpoint writes that were reapplied.
func TestTornCheckpointProperty(t *testing.T) {
	type step struct {
		Write uint8 // page index selector
		Val   byte
		Op    uint8 // 0 write, 1 checkpoint, 2 torn checkpoint + recover, 3 recover
	}
	f := func(steps []step) bool {
		clk := clock.NewVirtual()
		costs := clock.DefaultCosts()
		dev := device.NewStripe(clk, costs, 4, 64<<10, 256<<20)
		s, err := Format(dev, clk, costs)
		if err != nil {
			return false
		}
		oid := s.NewOID()
		s.Ensure(oid, 2)
		if _, err := s.Checkpoint(); err != nil {
			return false
		}
		committed := map[uint8]byte{}
		live := map[uint8]byte{}
		page := make([]byte, BlockSize)
		recover := func() bool {
			s2, err := Recover(dev, clk, costs)
			if err != nil {
				return false
			}
			s = s2
			live = map[uint8]byte{}
			for k, v := range committed {
				live[k] = v
			}
			return true
		}
		for _, st := range steps {
			switch st.Op % 4 {
			case 0:
				pg := int64(st.Write % 32)
				page[0] = st.Val
				if err := s.WritePage(oid, pg, page); err != nil {
					return false
				}
				live[st.Write%32] = st.Val
			case 1:
				if _, err := s.Checkpoint(); err != nil {
					return false
				}
				committed = map[uint8]byte{}
				for k, v := range live {
					committed[k] = v
				}
			case 2:
				s.FailBeforeCommit = true
				if _, err := s.Checkpoint(); err == nil {
					return false // injected crash must surface
				}
				if !recover() {
					return false
				}
			case 3:
				if !recover() {
					return false
				}
			}
		}
		for pg, want := range live {
			found, err := s.ReadPage(oid, int64(pg), page)
			if err != nil || !found || page[0] != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Views of retained epochs are immutable: later writes and checkpoints
// never change what a view reads.
func TestViewImmutabilityProperty(t *testing.T) {
	clk := clock.NewVirtual()
	costs := clock.DefaultCosts()
	dev := device.NewStripe(clk, costs, 4, 64<<10, 512<<20)
	s, err := Format(dev, clk, costs)
	if err != nil {
		t.Fatal(err)
	}
	oid := s.NewOID()
	s.Ensure(oid, 2)
	page := make([]byte, BlockSize)

	// Build 10 epochs, each stamping pages with the epoch number.
	type snap struct {
		epoch Epoch
		val   byte
	}
	var snaps []snap
	for e := byte(1); e <= 10; e++ {
		for pg := int64(0); pg < 8; pg++ {
			page[0] = e
			if err := s.WritePage(oid, pg, page); err != nil {
				t.Fatal(err)
			}
		}
		st, err := s.Checkpoint()
		if err != nil {
			t.Fatal(err)
		}
		snaps = append(snaps, snap{st.Epoch, e})
	}
	// Every retained view still reads its own epoch's stamp.
	for _, sn := range snaps {
		v, err := s.RestoreView(sn.epoch)
		if err != nil {
			t.Fatalf("epoch %d: %v", sn.epoch, err)
		}
		for pg := int64(0); pg < 8; pg++ {
			if _, err := v.ReadPage(oid, pg, page); err != nil {
				t.Fatal(err)
			}
			if page[0] != sn.val {
				t.Fatalf("epoch %d page %d = %d, want %d", sn.epoch, pg, page[0], sn.val)
			}
		}
	}
}

func TestRecoveryAfterManyEpochs(t *testing.T) {
	clk := clock.NewVirtual()
	costs := clock.DefaultCosts()
	dev := device.NewStripe(clk, costs, 4, 64<<10, 512<<20)
	s, err := Format(dev, clk, costs)
	if err != nil {
		t.Fatal(err)
	}
	oid := s.NewOID()
	for e := 0; e < 100; e++ {
		s.PutRecord(oid, 1, []byte(fmt.Sprintf("epoch-%d", e)))
		if _, err := s.Checkpoint(); err != nil {
			t.Fatal(err)
		}
		if e%10 == 0 {
			s.ReleaseCheckpointsBefore(s.Epoch())
		}
	}
	s2, err := Recover(dev, clk, costs)
	if err != nil {
		t.Fatal(err)
	}
	got, err := s2.GetRecord(oid)
	if err != nil || string(got) != "epoch-99" {
		t.Fatalf("got %q err=%v", got, err)
	}
}
