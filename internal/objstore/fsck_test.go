package objstore

import (
	"fmt"
	"testing"
)

func TestFsckCleanStore(t *testing.T) {
	s, dev, clk := newStore(t)
	for i := 0; i < 20; i++ {
		oid := s.NewOID()
		if i%3 == 0 {
			if _, err := s.CreateJournal(oid, 9, 64<<10); err != nil {
				t.Fatal(err)
			}
			continue
		}
		s.Ensure(oid, 2)
		page := make([]byte, BlockSize)
		for pg := int64(0); pg < 8; pg++ {
			s.WritePage(oid, pg, page)
		}
	}
	if _, err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	rep := s.Fsck()
	if !rep.OK() {
		t.Fatalf("clean store has problems: %v", rep.Problems)
	}
	if rep.Objects != 20 || rep.Journals != 7 {
		t.Fatalf("report: %+v", rep)
	}
	if rep.Blocks == 0 {
		t.Fatal("no blocks counted")
	}

	// Survives recovery too.
	s2 := reopen(t, dev, clk)
	rep2 := s2.Fsck()
	if !rep2.OK() {
		t.Fatalf("recovered store has problems: %v", rep2.Problems)
	}
}

func TestFsckAfterHeavyChurn(t *testing.T) {
	s, _, _ := newStore(t)
	oid := s.NewOID()
	s.Ensure(oid, 2)
	page := make([]byte, BlockSize)
	for e := 0; e < 20; e++ {
		for pg := int64(0); pg < 32; pg++ {
			page[0] = byte(e)
			s.WritePage(oid, pg, page)
		}
		if e%4 == 3 {
			other := s.NewOID()
			s.PutRecord(other, 1, []byte(fmt.Sprintf("churn-%d", e)))
			if e%8 == 7 {
				s.Delete(other)
			}
		}
		if _, err := s.Checkpoint(); err != nil {
			t.Fatal(err)
		}
		if e%5 == 4 {
			s.ReleaseCheckpointsBefore(s.Epoch())
		}
	}
	rep := s.Fsck()
	if !rep.OK() {
		t.Fatalf("post-churn problems: %v", rep.Problems)
	}
}

func TestFsckDetectsCorruptRecord(t *testing.T) {
	s, _, _ := newStore(t)
	oid := s.NewOID()
	s.PutRecord(oid, 1, []byte("to be corrupted"))
	if _, err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	// Smash the record's committed blocks directly on the device.
	s.mu.Lock()
	addr := s.objects[oid].recordAddr
	s.mu.Unlock()
	garbage := make([]byte, BlockSize)
	for i := range garbage {
		garbage[i] = 0x5A
	}
	if _, err := s.dev.WriteAt(garbage, addr); err != nil {
		t.Fatal(err)
	}
	rep := s.Fsck()
	if rep.OK() {
		t.Fatal("fsck missed a corrupted record")
	}
}
