package objstore

import (
	"fmt"
	"strings"
	"testing"
)

func TestFsckCleanStore(t *testing.T) {
	s, dev, clk := newStore(t)
	for i := 0; i < 20; i++ {
		oid := s.NewOID()
		if i%3 == 0 {
			if _, err := s.CreateJournal(oid, 9, 64<<10); err != nil {
				t.Fatal(err)
			}
			continue
		}
		s.Ensure(oid, 2)
		page := make([]byte, BlockSize)
		for pg := int64(0); pg < 8; pg++ {
			s.WritePage(oid, pg, page)
		}
	}
	if _, err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	rep := s.Fsck()
	if !rep.OK() {
		t.Fatalf("clean store has problems: %v", rep.Problems)
	}
	if rep.Objects != 20 || rep.Journals != 7 {
		t.Fatalf("report: %+v", rep)
	}
	if rep.Blocks == 0 {
		t.Fatal("no blocks counted")
	}

	// Survives recovery too.
	s2 := reopen(t, dev, clk)
	rep2 := s2.Fsck()
	if !rep2.OK() {
		t.Fatalf("recovered store has problems: %v", rep2.Problems)
	}
}

func TestFsckAfterHeavyChurn(t *testing.T) {
	s, _, _ := newStore(t)
	oid := s.NewOID()
	s.Ensure(oid, 2)
	page := make([]byte, BlockSize)
	for e := 0; e < 20; e++ {
		for pg := int64(0); pg < 32; pg++ {
			page[0] = byte(e)
			s.WritePage(oid, pg, page)
		}
		if e%4 == 3 {
			other := s.NewOID()
			s.PutRecord(other, 1, []byte(fmt.Sprintf("churn-%d", e)))
			if e%8 == 7 {
				s.Delete(other)
			}
		}
		if _, err := s.Checkpoint(); err != nil {
			t.Fatal(err)
		}
		if e%5 == 4 {
			s.ReleaseCheckpointsBefore(s.Epoch())
		}
	}
	rep := s.Fsck()
	if !rep.OK() {
		t.Fatalf("post-churn problems: %v", rep.Problems)
	}
}

func TestFsckDetectsCorruptRecord(t *testing.T) {
	s, _, _ := newStore(t)
	oid := s.NewOID()
	s.PutRecord(oid, 1, []byte("to be corrupted"))
	if _, err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	// Smash the record's committed blocks directly on the device.
	s.mu.Lock()
	addr := s.objects[oid].recordAddr
	s.mu.Unlock()
	garbage := make([]byte, BlockSize)
	for i := range garbage {
		garbage[i] = 0x5A
	}
	if _, err := s.dev.WriteAt(garbage, addr); err != nil {
		t.Fatal(err)
	}
	rep := s.Fsck()
	if rep.OK() {
		t.Fatal("fsck missed a corrupted record")
	}
}

// pageAddr digs out the committed device address of one page, for tests
// that corrupt media underneath fsck.
func pageAddr(t *testing.T, s *Store, oid OID, pg int64) int64 {
	t.Helper()
	s.mu.Lock()
	defer s.mu.Unlock()
	o, ok := s.objects[oid]
	if !ok || o.chunks == nil {
		t.Fatalf("object %d not paged", oid)
	}
	c, err := s.loadChunk(o, pg, false)
	if err != nil {
		t.Fatal(err)
	}
	addr := c.addrs[pg%ChunkFanout]
	if addr == 0 {
		t.Fatalf("page %d is a hole", pg)
	}
	return addr
}

func TestFsckScrubCountsPages(t *testing.T) {
	s, _, _ := newStore(t)
	oid := s.NewOID()
	s.Ensure(oid, 2)
	page := make([]byte, BlockSize)
	for pg := int64(0); pg < 5; pg++ {
		page[0] = byte(pg + 1)
		if err := s.WritePage(oid, pg, page); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	rep := s.Fsck()
	if !rep.OK() {
		t.Fatalf("problems: %v", rep.Problems)
	}
	if rep.ScrubbedPages != 5 {
		t.Fatalf("scrubbed %d pages, want 5", rep.ScrubbedPages)
	}
}

func TestFsckDetectsBitRot(t *testing.T) {
	// One flipped bit in a committed data page — silent media decay — must
	// fail the scrub against the chunk's per-slot checksum.
	s, dev, _ := newStore(t)
	oid := s.NewOID()
	s.Ensure(oid, 2)
	page := make([]byte, BlockSize)
	for i := range page {
		page[i] = byte(i)
	}
	if err := s.WritePage(oid, 3, page); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	addr := pageAddr(t, s, oid, 3)
	rot := make([]byte, 1)
	dev.PeekAt(rot, addr+100)
	rot[0] ^= 0x40
	dev.PokeAt(rot, addr+100)

	rep := s.Fsck()
	if rep.OK() {
		t.Fatal("fsck missed a single flipped bit in a data page")
	}
	found := false
	for _, p := range rep.Problems {
		if strings.Contains(p, "torn or rotted") {
			found = true
		}
	}
	if !found {
		t.Fatalf("no scrub problem reported: %v", rep.Problems)
	}
}

func TestFsckDetectsTornPage(t *testing.T) {
	// A page whose first sector holds different (e.g. stale or half-
	// written) content is torn; the whole-page checksum catches it even
	// though every sector is individually plausible.
	s, dev, _ := newStore(t)
	oid := s.NewOID()
	s.Ensure(oid, 2)
	page := make([]byte, BlockSize)
	for i := range page {
		page[i] = 0x3C
	}
	if err := s.WritePage(oid, 0, page); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	addr := pageAddr(t, s, oid, 0)
	dev.PokeAt(make([]byte, 512), addr) // first sector reverts to zeros

	rep := s.Fsck()
	if rep.OK() {
		t.Fatal("fsck missed a torn page")
	}
}

func TestFsckDetectsCorruptChunkBlock(t *testing.T) {
	// Chunks are lazily loaded after recovery; a corrupted chunk block must
	// fail its whole-block CRC rather than hand out garbage page addresses.
	s, dev, clk := newStore(t)
	oid := s.NewOID()
	s.Ensure(oid, 2)
	if err := s.WritePage(oid, 0, make([]byte, BlockSize)); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	s.mu.Lock()
	chunkAddr := s.objects[oid].chunks[0].addr
	s.mu.Unlock()

	s2 := reopen(t, dev, clk) // drop the in-memory chunk cache
	garbage := make([]byte, BlockSize)
	for i := range garbage {
		garbage[i] = 0xDB
	}
	dev.PokeAt(garbage, chunkAddr)

	rep := s2.Fsck()
	if rep.OK() {
		t.Fatal("fsck missed a corrupt chunk block")
	}
	found := false
	for _, p := range rep.Problems {
		if strings.Contains(p, "chunk") {
			found = true
		}
	}
	if !found {
		t.Fatalf("no chunk problem reported: %v", rep.Problems)
	}
}
