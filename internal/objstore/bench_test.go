package objstore

import (
	"testing"

	"aurora/internal/clock"
	"aurora/internal/device"
)

// Real-performance benchmarks of the store's hot paths.

func benchStore(b *testing.B) *Store {
	b.Helper()
	clk := clock.NewVirtual()
	costs := clock.DefaultCosts()
	dev := device.NewStripe(clk, costs, 4, 64<<10, 4<<30)
	s, err := Format(dev, clk, costs)
	if err != nil {
		b.Fatal(err)
	}
	return s
}

func BenchmarkWritePage(b *testing.B) {
	s := benchStore(b)
	oid := s.NewOID()
	s.Ensure(oid, 2)
	page := make([]byte, BlockSize)
	b.SetBytes(BlockSize)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := s.WritePage(oid, int64(i%4096), page); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCheckpoint64Dirty(b *testing.B) {
	s := benchStore(b)
	oid := s.NewOID()
	s.Ensure(oid, 2)
	page := make([]byte, BlockSize)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for pg := int64(0); pg < 64; pg++ {
			s.WritePage(oid, pg, page)
		}
		if _, err := s.Checkpoint(); err != nil {
			b.Fatal(err)
		}
		if i%32 == 31 {
			b.StopTimer()
			s.ReleaseCheckpointsBefore(s.Epoch())
			b.StartTimer()
		}
	}
}

func BenchmarkJournalAppend(b *testing.B) {
	s := benchStore(b)
	j, err := s.CreateJournal(s.NewOID(), 9, 1<<30)
	if err != nil {
		b.Fatal(err)
	}
	payload := make([]byte, 4096-frameHeaderLen)
	b.SetBytes(int64(len(payload)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := j.Append(payload); err != nil {
			b.StopTimer()
			j.Truncate()
			b.StartTimer()
		}
	}
}

func BenchmarkRecoverManyObjects(b *testing.B) {
	clk := clock.NewVirtual()
	costs := clock.DefaultCosts()
	dev := device.NewStripe(clk, costs, 4, 64<<10, 4<<30)
	s, err := Format(dev, clk, costs)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < 1000; i++ {
		s.PutRecord(s.NewOID(), 1, make([]byte, 200))
	}
	if _, err := s.Checkpoint(); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Recover(dev, clk, costs); err != nil {
			b.Fatal(err)
		}
	}
}
