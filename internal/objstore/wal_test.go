package objstore

import (
	"bytes"
	"errors"
	"fmt"
	"strings"
	"testing"

	"aurora/internal/clock"
	"aurora/internal/device"
)

// putPage builds a deterministic page payload.
func walPage(tag byte) []byte {
	p := make([]byte, BlockSize)
	for i := range p {
		p[i] = tag ^ byte(i)
	}
	return p
}

func TestWALCommitReplaysAfterReopen(t *testing.T) {
	s, dev, clk := newStore(t)
	rec := s.NewOID()
	pgd := s.NewOID()
	s.Ensure(pgd, 9)

	// Interval 1: inline record + two pages, committed as WAL frame 1.
	if err := s.PutRecord(rec, 7, []byte("frame one")); err != nil {
		t.Fatal(err)
	}
	if err := s.WritePage(pgd, 0, walPage(0xA1)); err != nil {
		t.Fatal(err)
	}
	if err := s.WritePage(pgd, 3, walPage(0xA3)); err != nil {
		t.Fatal(err)
	}
	st, err := s.WALCommit()
	if err != nil {
		t.Fatal(err)
	}
	if st.Seq != 1 || st.Base != s.Epoch() {
		t.Fatalf("frame 1 stats = %+v (epoch %d)", st, s.Epoch())
	}

	// Interval 2: overwrite both, shrink the paged object, frame 2.
	if err := s.PutRecord(rec, 7, []byte("frame two, longer payload")); err != nil {
		t.Fatal(err)
	}
	if err := s.WritePage(pgd, 0, walPage(0xB0)); err != nil {
		t.Fatal(err)
	}
	if err := s.Truncate(pgd, 2*BlockSize); err != nil {
		t.Fatal(err)
	}
	if st, err = s.WALCommit(); err != nil {
		t.Fatal(err)
	}
	if st.Seq != 2 {
		t.Fatalf("frame 2 seq = %d", st.Seq)
	}
	if err := s.WaitWALDurable(2); err != nil {
		t.Fatal(err)
	}

	// The epoch did not advance: WAL commits are sub-checkpoint durability.
	if s.Epoch() != 1 {
		t.Fatalf("epoch advanced to %d on WAL commit", s.Epoch())
	}

	s2 := reopen(t, dev, clk)
	if got := s2.WALSeq(); got != 2 {
		t.Fatalf("recovered WALSeq = %d, want 2", got)
	}
	if got := s2.WALReplayed(); got != 2 {
		t.Fatalf("WALReplayed = %d, want 2", got)
	}
	got, err := s2.GetRecord(rec)
	if err != nil || !bytes.Equal(got, []byte("frame two, longer payload")) {
		t.Fatalf("record after replay = %q, %v", got, err)
	}
	if sz, _ := s2.Size(pgd); sz != 2*BlockSize {
		t.Fatalf("paged size after replay = %d", sz)
	}
	buf := make([]byte, BlockSize)
	if ok, err := s2.ReadPage(pgd, 0, buf); err != nil || !ok || !bytes.Equal(buf, walPage(0xB0)) {
		t.Fatalf("page 0 after replay wrong (ok=%v err=%v)", ok, err)
	}
	if ok, _ := s2.ReadPage(pgd, 3, buf); ok {
		t.Fatal("truncated page 3 still present after replay")
	}
	if rep := s2.Fsck(); !rep.OK() {
		t.Fatalf("fsck after replay: %v", rep.Problems)
	}
	if probs := s2.AuditLive(); len(probs) != 0 {
		t.Fatalf("audit after replay: %v", probs)
	}

	// A further WAL commit continues the chain on the recovered store.
	if err := s2.PutRecord(rec, 7, []byte("frame three")); err != nil {
		t.Fatal(err)
	}
	if st, err = s2.WALCommit(); err != nil {
		t.Fatal(err)
	}
	if st.Seq != 3 {
		t.Fatalf("post-recovery frame seq = %d, want 3", st.Seq)
	}
}

func TestWALFoldResetsGenerationAndHead(t *testing.T) {
	s, _, clk := newStore(t)
	oid := s.NewOID()
	for i := 0; i < 3; i++ {
		if err := s.PutRecord(oid, 1, []byte(fmt.Sprintf("v%d", i))); err != nil {
			t.Fatal(err)
		}
		if _, err := s.WALCommit(); err != nil {
			t.Fatal(err)
		}
	}
	if s.WALSeq() != 3 || s.WALHead() == 0 {
		t.Fatalf("pre-fold WALSeq=%d head=%d", s.WALSeq(), s.WALHead())
	}
	cst, err := s.Fold()
	if err != nil {
		t.Fatal(err)
	}
	if s.WALSeq() != 0 {
		t.Fatalf("post-fold WALSeq = %d", s.WALSeq())
	}
	if s.WALHead() != 0 {
		t.Fatalf("post-fold head = %d, want 0 (Fold waits out the superblock)", s.WALHead())
	}
	if s.Epoch() != cst.Epoch {
		t.Fatalf("epoch %d != fold epoch %d", s.Epoch(), cst.Epoch)
	}
	// Old-generation sequence numbers remain coverable via the fold.
	if err := s.WaitWALDurable(2); err != nil {
		t.Fatal(err)
	}
	_ = clk
}

func TestWALDeferredResetKeepsOldFramesUntilFoldDurable(t *testing.T) {
	s, _, _ := newStore(t)
	oid := s.NewOID()
	if err := s.PutRecord(oid, 1, []byte("a")); err != nil {
		t.Fatal(err)
	}
	if _, err := s.WALCommit(); err != nil {
		t.Fatal(err)
	}
	headBefore := s.WALHead()
	// Plain Checkpoint (no durability wait): the reset must be deferred.
	if _, err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if s.WALHead() != headBefore {
		t.Fatalf("head reset before the fold superblock settled: %d -> %d", headBefore, s.WALHead())
	}
	// After the superblock settles, the next WAL commit restarts the ring.
	if err := s.WaitDurable(s.Epoch()); err != nil {
		t.Fatal(err)
	}
	if err := s.PutRecord(oid, 1, []byte("b")); err != nil {
		t.Fatal(err)
	}
	st, err := s.WALCommit()
	if err != nil {
		t.Fatal(err)
	}
	if st.Seq != 1 {
		t.Fatalf("new generation seq = %d, want 1", st.Seq)
	}
	if s.WALHead() != st.Bytes {
		t.Fatalf("head = %d after reset+append of %d bytes", s.WALHead(), st.Bytes)
	}
}

func TestWALMutationMixReplay(t *testing.T) {
	s, dev, clk := newStore(t)
	rec := s.NewOID()
	big := s.NewOID()
	gone := s.NewOID()
	jrn := s.NewOID()
	bare := s.NewOID()

	if err := s.PutRecord(gone, 2, []byte("to be deleted")); err != nil {
		t.Fatal(err)
	}
	j, err := s.CreateJournal(jrn, 3, 8*BlockSize)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := j.Append([]byte("j-entry-1")); err != nil {
		t.Fatal(err)
	}
	if _, err := s.WALCommit(); err != nil {
		t.Fatal(err)
	}

	// Frame 2: large record (spills to pages), delete, bare create, WriteAt.
	payload := bytes.Repeat([]byte{0x5A}, InlineMax+3*BlockSize)
	if err := s.PutRecord(big, 4, payload); err != nil {
		t.Fatal(err)
	}
	if err := s.Delete(gone); err != nil {
		t.Fatal(err)
	}
	s.Ensure(bare, 5)
	if err := s.PutRecord(rec, 1, []byte("small")); err != nil {
		t.Fatal(err)
	}
	if _, err := j.Append([]byte("j-entry-2")); err != nil {
		t.Fatal(err)
	}
	if _, err := s.WALCommit(); err != nil {
		t.Fatal(err)
	}

	s2 := reopen(t, dev, clk)
	if got := s2.WALSeq(); got != 2 {
		t.Fatalf("WALSeq = %d", got)
	}
	gotBig, err := s2.GetRecord(big)
	if err != nil || !bytes.Equal(gotBig, payload) {
		t.Fatalf("large record after replay: %d bytes, err %v", len(gotBig), err)
	}
	if s2.Exists(gone) {
		t.Fatal("deleted object survived replay")
	}
	if !s2.Exists(bare) {
		t.Fatal("bare-created object lost in replay")
	}
	if ut, _ := s2.UType(bare); ut != 5 {
		t.Fatalf("bare utype = %d", ut)
	}
	j2, err := s2.OpenJournal(jrn)
	if err != nil {
		t.Fatal(err)
	}
	ents, err := j2.Entries()
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 2 || string(ents[1].Payload) != "j-entry-2" {
		t.Fatalf("journal entries after replay: %d", len(ents))
	}
	if rep := s2.Fsck(); !rep.OK() {
		t.Fatalf("fsck: %v", rep.Problems)
	}
	if probs := s2.AuditLive(); len(probs) != 0 {
		t.Fatalf("audit: %v", probs)
	}
	// A fold on the recovered store must commit cleanly and survive reopen.
	if _, err := s2.Fold(); err != nil {
		t.Fatal(err)
	}
	s3 := reopen(t, dev, clk)
	if got, err := s3.GetRecord(big); err != nil || !bytes.Equal(got, payload) {
		t.Fatalf("large record after fold+reopen: err %v", err)
	}
	if rep := s3.Fsck(); !rep.OK() {
		t.Fatalf("fsck after fold: %v", rep.Problems)
	}
}

func TestWALJournalTruncateReplay(t *testing.T) {
	s, dev, clk := newStore(t)
	jrn := s.NewOID()
	j, err := s.CreateJournal(jrn, 3, 8*BlockSize)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := j.Append([]byte("old-gen")); err != nil {
		t.Fatal(err)
	}
	if _, err := s.WALCommit(); err != nil {
		t.Fatal(err)
	}
	// Frame 2 carries the truncation: the old generation's entry is flushed.
	j.Truncate()
	if _, err := s.WALCommit(); err != nil {
		t.Fatal(err)
	}
	s2 := reopen(t, dev, clk)
	j2, err := s2.OpenJournal(jrn)
	if err != nil {
		t.Fatal(err)
	}
	ents, err := j2.Entries()
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 0 {
		t.Fatalf("truncated journal replayed %d entries", len(ents))
	}
	if rep := s2.Fsck(); !rep.OK() {
		t.Fatalf("fsck: %v", rep.Problems)
	}
}

func TestWALFullFallsBackToFold(t *testing.T) {
	clk := clock.NewVirtual()
	// Tiny device: 4 MiB -> 1024 blocks -> 128-block WAL region (512 KiB).
	dev := device.New(clk, clock.DefaultCosts(), 4<<20)
	s, err := Format(dev, clk, clock.DefaultCosts())
	if err != nil {
		t.Fatal(err)
	}
	oid := s.NewOID()
	payload := bytes.Repeat([]byte{7}, 48<<10) // 48 KiB inline op per frame
	sawFull := false
	for i := 0; i < 64; i++ {
		if err := s.PutRecord(oid, 1, payload); err != nil {
			t.Fatal(err)
		}
		_, err := s.WALCommit()
		if errors.Is(err, ErrWALFull) {
			sawFull = true
			if _, err := s.Fold(); err != nil {
				t.Fatal(err)
			}
			// The fold absorbed the pending ops and emptied the ring; a
			// retry now fits.
			if err := s.PutRecord(oid, 1, payload); err != nil {
				t.Fatal(err)
			}
			if st, err := s.WALCommit(); err != nil || st.Seq != 1 {
				t.Fatalf("retry after fold: %+v, %v", st, err)
			}
			break
		}
		if err != nil {
			t.Fatal(err)
		}
	}
	if !sawFull {
		t.Fatal("never hit ErrWALFull")
	}
}

// TestWALTornTailProperty is the satellite property test: any sector-prefix
// truncation of the WAL ring replays cleanly to the last fully-committed
// frame — never a partial frame, never a crash, always a clean fsck.
func TestWALTornTailProperty(t *testing.T) {
	s, dev, clk := newStore(t)
	rec := s.NewOID()
	pgd := s.NewOID()
	s.Ensure(pgd, 9)

	const frames = 4
	ends := make([]int64, 0, frames) // ring offset past each committed frame
	for i := 1; i <= frames; i++ {
		if err := s.PutRecord(rec, 7, []byte(fmt.Sprintf("payload-%d", i))); err != nil {
			t.Fatal(err)
		}
		if err := s.WritePage(pgd, int64(i), walPage(byte(i))); err != nil {
			t.Fatal(err)
		}
		if _, err := s.WALCommit(); err != nil {
			t.Fatal(err)
		}
		ends = append(ends, s.WALHead())
	}
	walBase, walSize := s.WALRegion()
	pristine := make([]byte, walSize)
	if _, err := dev.ReadAt(pristine, walBase); err != nil {
		t.Fatal(err)
	}
	lastEnd := ends[len(ends)-1]

	for cut := int64(0); cut <= lastEnd; cut += 512 {
		// Truncate the ring to a sector prefix: everything at and past the
		// cut is zeroed, as if those sectors never landed.
		region := append([]byte(nil), pristine...)
		for i := cut; i < int64(len(region)); i++ {
			region[i] = 0
		}
		if _, err := dev.WriteAt(region, walBase); err != nil {
			t.Fatal(err)
		}
		s2 := reopen(t, dev, clk)
		wantSeq := uint64(0)
		for fi, end := range ends {
			if end <= cut {
				wantSeq = uint64(fi + 1)
			}
		}
		if got := s2.WALSeq(); got != wantSeq {
			t.Fatalf("cut at %d: WALSeq = %d, want %d", cut, got, wantSeq)
		}
		if wantSeq == 0 {
			if s2.Exists(rec) {
				t.Fatalf("cut at %d: uncommitted record visible", cut)
			}
		} else {
			got, err := s2.GetRecord(rec)
			want := fmt.Sprintf("payload-%d", wantSeq)
			if err != nil || string(got) != want {
				t.Fatalf("cut at %d: record %q (err %v), want %q", cut, got, err, want)
			}
			buf := make([]byte, BlockSize)
			if ok, err := s2.ReadPage(pgd, int64(wantSeq), buf); err != nil || !ok || !bytes.Equal(buf, walPage(byte(wantSeq))) {
				t.Fatalf("cut at %d: page %d wrong (ok=%v err=%v)", cut, wantSeq, ok, err)
			}
			if ok, _ := s2.ReadPage(pgd, int64(wantSeq)+1, buf); ok {
				t.Fatalf("cut at %d: page past committed frame visible", cut)
			}
		}
		if rep := s2.Fsck(); !rep.OK() {
			t.Fatalf("cut at %d: fsck: %v", cut, rep.Problems)
		}
		if probs := s2.AuditLive(); len(probs) != 0 {
			t.Fatalf("cut at %d: audit: %v", cut, probs)
		}
	}
	// Restore the pristine ring so the shared device is sane if reused.
	if _, err := dev.WriteAt(pristine, walBase); err != nil {
		t.Fatal(err)
	}
}

// TestFsckWALScrub is the table-driven WAL scrub battery: injected bit-rot
// inside the committed chain must be flagged, orphaned future-epoch frames
// must be flagged, and garbage past the head must stay clean.
func TestFsckWALScrub(t *testing.T) {
	build := func(t *testing.T) (*Store, *device.Stripe, *clock.Virtual) {
		s, dev, clk := newStore(t)
		oid := s.NewOID()
		for i := 0; i < 2; i++ {
			if err := s.PutRecord(oid, 1, []byte(fmt.Sprintf("wal-%d", i))); err != nil {
				t.Fatal(err)
			}
			if _, err := s.WALCommit(); err != nil {
				t.Fatal(err)
			}
		}
		return s, dev, clk
	}

	cases := []struct {
		name    string
		corrupt func(t *testing.T, s *Store, dev *device.Stripe)
		want    string // problem substring; "" = must stay clean
	}{
		{
			name: "clean",
			corrupt: func(t *testing.T, s *Store, dev *device.Stripe) {
			},
			want: "",
		},
		{
			name: "bitrot-in-committed-frame",
			corrupt: func(t *testing.T, s *Store, dev *device.Stripe) {
				walBase, _ := s.WALRegion()
				b := make([]byte, 1)
				if _, err := dev.ReadAt(b, walBase+20); err != nil {
					t.Fatal(err)
				}
				b[0] ^= 0x40
				if _, err := dev.WriteAt(b, walBase+20); err != nil {
					t.Fatal(err)
				}
			},
			want: "wal: undecodable frame",
		},
		{
			name: "garbage-past-head",
			corrupt: func(t *testing.T, s *Store, dev *device.Stripe) {
				walBase, _ := s.WALRegion()
				junk := bytes.Repeat([]byte{0xDE, 0xAD}, 512)
				if _, err := dev.WriteAt(junk, walBase+s.WALHead()); err != nil {
					t.Fatal(err)
				}
			},
			want: "",
		},
		{
			name: "orphan-future-epoch-frame",
			corrupt: func(t *testing.T, s *Store, dev *device.Stripe) {
				walBase, _ := s.WALRegion()
				orphan := encodeWALFrame(&walFrame{base: s.Epoch() + 5, seq: 1})
				if _, err := dev.WriteAt(orphan, walBase+s.WALHead()); err != nil {
					t.Fatal(err)
				}
			},
			want: "orphaned frame",
		},
		{
			name: "torn-tail-partial-frame",
			corrupt: func(t *testing.T, s *Store, dev *device.Stripe) {
				// A prefix of a valid frame past the head: torn, not corrupt.
				walBase, _ := s.WALRegion()
				frame := encodeWALFrame(&walFrame{base: s.Epoch(), seq: 99})
				if _, err := dev.WriteAt(frame[:len(frame)-6], walBase+s.WALHead()); err != nil {
					t.Fatal(err)
				}
			},
			want: "",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s, dev, _ := build(t)
			tc.corrupt(t, s, dev)
			rep := s.Fsck()
			if tc.want == "" {
				if !rep.OK() {
					t.Fatalf("want clean, got: %v", rep.Problems)
				}
				return
			}
			found := false
			for _, p := range rep.Problems {
				if strings.Contains(p, tc.want) {
					found = true
				}
			}
			if !found {
				t.Fatalf("want problem containing %q, got: %v", tc.want, rep.Problems)
			}
		})
	}
}

// TestWALIntraIntervalRetireQuarantine: once a WAL frame has committed,
// blocks born in the interval cannot recycle into the freelist — a crash
// would replay the frame, which may reference them.
func TestWALIntraIntervalRetireQuarantine(t *testing.T) {
	s, dev, clk := newStore(t)
	oid := s.NewOID()
	s.Ensure(oid, 9)
	if err := s.WritePage(oid, 0, walPage(0x11)); err != nil {
		t.Fatal(err)
	}
	if _, err := s.WALCommit(); err != nil {
		t.Fatal(err)
	}
	// Overwrite the same page repeatedly: each write retires the previous
	// interval-born block. With a frame outstanding they must quarantine,
	// not recycle — otherwise a replay of frame 1 would read a block the
	// live run reused for different content.
	for i := 0; i < 4; i++ {
		if err := s.WritePage(oid, 0, walPage(byte(0x20+i))); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := s.WALCommit(); err != nil {
		t.Fatal(err)
	}
	s2 := reopen(t, dev, clk)
	buf := make([]byte, BlockSize)
	if ok, err := s2.ReadPage(oid, 0, buf); err != nil || !ok || !bytes.Equal(buf, walPage(0x23)) {
		t.Fatalf("replayed page content wrong (ok=%v err=%v)", ok, err)
	}
	if rep := s2.Fsck(); !rep.OK() {
		t.Fatalf("fsck: %v", rep.Problems)
	}
}

// FuzzWALRecord fuzzes the frame decoder with seeds drawn from real append
// streams; the decoder must never panic and must reject any mutation that
// breaks the seal.
func FuzzWALRecord(f *testing.F) {
	// Seed from a real store's WAL ring.
	clk := clock.NewVirtual()
	dev := device.New(clk, clock.DefaultCosts(), 64<<20)
	s, err := Format(dev, clk, clock.DefaultCosts())
	if err != nil {
		f.Fatal(err)
	}
	oid := s.NewOID()
	pgd := s.NewOID()
	s.Ensure(pgd, 9)
	for i := 0; i < 3; i++ {
		_ = s.PutRecord(oid, 1, bytes.Repeat([]byte{byte(i)}, 40+i*13))
		_ = s.WritePage(pgd, int64(i), walPage(byte(i)))
		if _, err := s.WALCommit(); err != nil {
			f.Fatal(err)
		}
	}
	jrn := s.NewOID()
	if j, err := s.CreateJournal(jrn, 3, 4*BlockSize); err == nil {
		_ = j
	}
	_ = s.Delete(oid)
	if _, err := s.WALCommit(); err != nil {
		f.Fatal(err)
	}
	base, size := s.WALRegion()
	ring := make([]byte, size)
	if _, err := dev.ReadAt(ring, base); err != nil {
		f.Fatal(err)
	}
	off := int64(0)
	for off < s.WALHead() {
		fr, padded, ok := decodeWALFrame(ring[off:])
		if !ok {
			f.Fatalf("seed frame at %d undecodable", off)
		}
		f.Add(append([]byte(nil), ring[off:off+padded]...))
		_ = fr
		off += padded
	}
	f.Add([]byte{})
	f.Add(make([]byte, walHeaderLen+4))

	f.Fuzz(func(t *testing.T, data []byte) {
		fr, padded, ok := decodeWALFrame(data)
		if !ok {
			return
		}
		if padded > int64(len(data))+walSector {
			t.Fatalf("padded %d beyond input %d", padded, len(data))
		}
		// A decodable frame must round-trip bit-identically.
		re := encodeWALFrame(fr)
		if int64(len(re)) > padded {
			t.Fatalf("re-encode grew: %d > %d", len(re), padded)
		}
		fr2, _, ok2 := decodeWALFrame(re)
		if !ok2 {
			t.Fatal("re-encoded frame undecodable")
		}
		if fr2.base != fr.base || fr2.seq != fr.seq || len(fr2.ops) != len(fr.ops) {
			t.Fatalf("round-trip mismatch: %+v vs %+v", fr, fr2)
		}
	})
}
