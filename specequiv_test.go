package aurora_test

// Serial-vs-speculative restore equivalence: the same crash image restored
// both ways must leave byte-identical store state and identical application
// memory, and both machines must be audit-clean. The workloads and power
// cuts are seeded, so the sweep replays any failure from its seed.

import (
	"bytes"
	"fmt"
	"math/rand"
	"os"
	"strconv"
	"testing"

	"aurora"
	"aurora/internal/vm"
)

const equivPages = 24

// buildCrashedTwin runs one seeded workload to a power cut and returns the
// rebooted machine plus the workload region. Two calls with the same seed
// produce byte-identical crash images (pinned by TestRunToRunDeterminism).
func buildCrashedTwin(seed int64) (*aurora.Machine, uint64, error) {
	m, err := aurora.NewMachine(aurora.Config{
		StorageBytes: 256 << 20,
		Fault:        &aurora.FaultPlan{CutAtSubmit: -1},
	})
	if err != nil {
		return nil, 0, err
	}
	p := m.Spawn("app")
	g, err := m.Attach("app", p)
	if err != nil {
		return nil, 0, err
	}
	g.Options.FlushWorkers = 1 // deterministic submit stream
	va, err := p.Mmap(equivPages*vm.PageSize, aurora.ProtRead|aurora.ProtWrite, false)
	if err != nil {
		return nil, 0, err
	}

	rng := rand.New(rand.NewSource(seed))
	n := 30 + rng.Intn(40)
	for i := 0; i < n; i++ {
		switch rng.Intn(10) {
		case 0, 1, 2, 3, 4, 5:
			pg := uint64(rng.Intn(equivPages))
			if err := p.WriteMem(va+pg*vm.PageSize, []byte{byte(1 + rng.Intn(255))}); err != nil {
				return nil, 0, err
			}
		case 6, 7:
			if _, err := g.Checkpoint(aurora.CkptIncremental); err != nil {
				return nil, 0, err
			}
		case 8:
			if _, err := g.Checkpoint(aurora.CkptFull); err != nil {
				return nil, 0, err
			}
		case 9:
			j, err := g.Journal("wal", 1<<20)
			if err != nil {
				return nil, 0, err
			}
			payload := make([]byte, 8+rng.Intn(48))
			rng.Read(payload)
			if _, err := j.Append(payload); err != nil {
				return nil, 0, err
			}
		}
	}
	// Land on a committed image, then lose a tail of writes to the cut.
	if _, err := g.Checkpoint(aurora.CkptIncremental); err != nil {
		return nil, 0, err
	}
	for i := 0; i < 4; i++ {
		pg := uint64(rng.Intn(equivPages))
		p.WriteMem(va+pg*vm.PageSize, []byte{0xEE})
	}
	return m, va, nil
}

// readRegion pulls the whole workload region out of a restored group's
// process, faulting lazily where the restore left holes.
func readRegion(m *aurora.Machine, va uint64) ([]byte, error) {
	g, ok := m.Group("app")
	if !ok {
		return nil, fmt.Errorf("group %q not restored", "app")
	}
	procs := g.Procs()
	if len(procs) != 1 {
		return nil, fmt.Errorf("group has %d procs, want 1", len(procs))
	}
	buf := make([]byte, equivPages*vm.PageSize)
	if err := procs[0].ReadMem(va, buf); err != nil {
		return nil, err
	}
	return buf, nil
}

func equivCheck(seed int64) error {
	fail := func(format string, args ...any) error {
		return fmt.Errorf("[seed=%d] %s", seed, fmt.Sprintf(format, args...))
	}
	mSerialLive, vaA, err := buildCrashedTwin(seed)
	if err != nil {
		return fail("twin A: %v", err)
	}
	mSpecLive, vaB, err := buildCrashedTwin(seed)
	if err != nil {
		return fail("twin B: %v", err)
	}
	if vaA != vaB {
		return fail("twins diverged before the cut: va %#x vs %#x", vaA, vaB)
	}
	mSerial, err := mSerialLive.PowerCut(seed, seed%2 == 0, seed%3 == 0)
	if err != nil {
		return fail("power cut A: %v", err)
	}
	mSpec, err := mSpecLive.PowerCut(seed, seed%2 == 0, seed%3 == 0)
	if err != nil {
		return fail("power cut B: %v", err)
	}

	if _, _, err := mSerial.Restore("app"); err != nil {
		return fail("serial restore: %v", err)
	}
	_, rst, err := mSpec.RestoreSpeculatively("app")
	if err != nil {
		return fail("speculative restore: %v", err)
	}
	if rst.Rollbacks != 0 {
		return fail("clean image triggered %d rollback(s)", rst.Rollbacks)
	}
	if rst.PagesValidated <= 0 {
		return fail("validator confirmed nothing: %+v", rst)
	}
	if rst.TimeToFirstOp <= 0 || rst.TimeToFirstOp >= rst.Time {
		return fail("time-to-first-op %v not below serial-equivalent total %v", rst.TimeToFirstOp, rst.Time)
	}

	// Application memory must match byte for byte.
	memSerial, err := readRegion(mSerial, vaA)
	if err != nil {
		return fail("read serial region: %v", err)
	}
	memSpec, err := readRegion(mSpec, vaA)
	if err != nil {
		return fail("read speculative region: %v", err)
	}
	if !bytes.Equal(memSerial, memSpec) {
		for i := range memSerial {
			if memSerial[i] != memSpec[i] {
				return fail("memory diverges at page %d offset %d: %#x vs %#x",
					i/int(vm.PageSize), i%int(vm.PageSize), memSerial[i], memSpec[i])
			}
		}
	}

	// Neither restore path may have written to the store: the post-restore
	// disk images must stay byte-identical.
	var imgSerial, imgSpec bytes.Buffer
	if err := mSerial.SaveImage(&imgSerial); err != nil {
		return fail("save serial image: %v", err)
	}
	if err := mSpec.SaveImage(&imgSpec); err != nil {
		return fail("save speculative image: %v", err)
	}
	if !bytes.Equal(imgSerial.Bytes(), imgSpec.Bytes()) {
		return fail("post-restore store images differ (%d vs %d bytes)",
			imgSerial.Len(), imgSpec.Len())
	}

	if rep := mSerial.Audit(); !rep.OK() {
		return fail("serial machine audit: %s", rep)
	}
	if rep := mSpec.Audit(); !rep.OK() {
		return fail("speculative machine audit: %s", rep)
	}
	return nil
}

// TestSerialSpeculativeEquivalence sweeps seeded crash images through both
// restore modes. AURORA_SPEC_EQUIV_SEEDS overrides the seed count.
func TestSerialSpeculativeEquivalence(t *testing.T) {
	seeds := 100
	if v := os.Getenv("AURORA_SPEC_EQUIV_SEEDS"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil {
			t.Fatalf("AURORA_SPEC_EQUIV_SEEDS=%q: %v", v, err)
		}
		seeds = n
	}
	if testing.Short() {
		seeds = 12
	}
	for seed := int64(0); seed < int64(seeds); seed++ {
		if err := equivCheck(seed); err != nil {
			t.Error(err)
		}
	}
}
