package main

import (
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

func TestFilebenchCLI(t *testing.T) {
	if testing.Short() {
		t.Skip("builds a binary")
	}
	bin := filepath.Join(t.TempDir(), "filebench")
	if out, err := exec.Command("go", "build", "-o", bin, ".").CombinedOutput(); err != nil {
		t.Fatalf("build: %v\n%s", err, out)
	}
	out, err := exec.Command(bin, "-fs", "aurora", "-workload", "varmail", "-duration", "30ms").CombinedOutput()
	if err != nil {
		t.Fatalf("run: %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "varmail") || !strings.Contains(string(out), "ops/s") {
		t.Fatalf("output: %s", out)
	}
	if err := exec.Command(bin, "-fs", "ntfs").Run(); err == nil {
		t.Fatal("unknown fs accepted")
	}
	if err := exec.Command(bin, "-workload", "compile-kernel").Run(); err == nil {
		t.Fatal("unknown workload accepted")
	}
}
