// Command filebench runs the FileBench workloads (§9.1) against any of the
// simulated file systems: the Aurora file system, FFS (SU+J), or ZFS (with
// or without checksums).
//
//	filebench -fs aurora -workload varmail
//	filebench -fs zfs -workload randomwrite -iosize 65536
//	filebench -all
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"aurora/internal/clock"
	"aurora/internal/device"
	"aurora/internal/filebench"
	"aurora/internal/fsbase"
	"aurora/internal/objstore"
	"aurora/internal/slsfs"
	"aurora/internal/vfs"
)

var workloads = map[string]func(vfs.FileSystem, filebench.Config) (filebench.Result, error){
	"randomwrite": filebench.RandomWrite,
	"seqwrite":    filebench.SeqWrite,
	"createfiles": filebench.CreateFiles,
	"writefsync":  filebench.WriteFsync,
	"fileserver":  filebench.FileServer,
	"varmail":     filebench.VarMail,
	"webserver":   filebench.WebServer,
}

var fsNames = []string{"aurora", "ffs", "zfs", "zfs+csum"}

func main() {
	fsName := flag.String("fs", "aurora", "file system: aurora, ffs, zfs, zfs+csum")
	wlName := flag.String("workload", "randomwrite", "workload name")
	iosize := flag.Int("iosize", 4096, "IO size in bytes")
	dur := flag.Duration("duration", 400*time.Millisecond, "virtual run duration")
	all := flag.Bool("all", false, "run every workload on every file system")
	flag.Parse()

	if *all {
		for name := range workloads {
			for _, fs := range fsNames {
				if err := run(fs, name, *iosize, *dur); err != nil {
					fmt.Fprintln(os.Stderr, "filebench:", err)
					os.Exit(1)
				}
			}
		}
		return
	}
	if _, ok := workloads[*wlName]; !ok {
		fmt.Fprintf(os.Stderr, "filebench: unknown workload %q\n", *wlName)
		os.Exit(2)
	}
	if err := run(*fsName, *wlName, *iosize, *dur); err != nil {
		fmt.Fprintln(os.Stderr, "filebench:", err)
		os.Exit(1)
	}
}

func run(fsName, wlName string, iosize int, dur time.Duration) error {
	clk := clock.NewVirtual()
	costs := clock.DefaultCosts()
	var fs vfs.FileSystem
	switch fsName {
	case "aurora":
		dev := device.NewStripe(clk, costs, 4, 64<<10, 4<<30)
		store, err := objstore.Format(dev, clk, costs)
		if err != nil {
			return err
		}
		afs, err := slsfs.Format(store, clk, costs)
		if err != nil {
			return err
		}
		afs.SetCheckpointPeriod(10 * time.Millisecond)
		fs = afs
	case "ffs":
		fs = fsbase.New(clk, device.NewStripe(clk, costs, 4, 64<<10, 4<<30), fsbase.FFS())
	case "zfs":
		fs = fsbase.New(clk, device.NewStripe(clk, costs, 4, 64<<10, 4<<30), fsbase.ZFS(false))
	case "zfs+csum":
		fs = fsbase.New(clk, device.NewStripe(clk, costs, 4, 64<<10, 4<<30), fsbase.ZFS(true))
	default:
		return fmt.Errorf("unknown file system %q", fsName)
	}
	res, err := workloads[wlName](fs, filebench.Config{
		Clock:    clk,
		Duration: dur,
		IOSize:   iosize,
		FileSize: 256 << 20,
		NFiles:   64,
		Seed:     1,
	})
	if err != nil {
		return err
	}
	fmt.Println(res.String())
	return nil
}
