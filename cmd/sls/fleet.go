package main

// The `sls fleet` verb: the placement coordinator's inspection surface.
// Machine images are single-machine artifacts, so the fleet command runs a
// deterministic in-memory demo fleet — N machines, one counter group each
// under the coordinator — and prints the coordinator's status and decision
// log. With -kill, one machine dies mid-run and the output shows the
// heartbeat detector noticing, the failovers, and the reseeded standbys:
// the quickest way to see the placement layer work without writing a
// scenario file.
//
// The demo fleet runs fully instrumented: every machine carries a
// telemetry registry, the coordinator records its decisions into a fleet
// registry watched by default SLOs, and `sls top` renders the same run as
// a per-machine metrics table.

import (
	"flag"
	"fmt"
	"time"

	"aurora"
	"aurora/internal/clock"
	"aurora/internal/placement"
	"aurora/internal/telemetry"
	"aurora/internal/vm"
)

func cmdFleet(args []string) error {
	if len(args) < 1 {
		return fmt.Errorf("usage: sls fleet status [-machines N] [-groups G] [-ticks T] [-kill MACHINE]")
	}
	switch args[0] {
	case "status":
		return cmdFleetStatus(args[1:])
	default:
		return fmt.Errorf("unknown fleet subcommand %q (want status)", args[0])
	}
}

// demoApp is one managed counter group and its current live process.
type demoApp struct {
	name string
	p    *aurora.Proc
}

// fleetDemo is the deterministic in-memory fleet the fleet/top verbs
// drive: machines under one virtual clock, managed groups, and the
// telemetry plane (per-machine registries, an instrumented coordinator,
// default fleet SLOs).
type fleetDemo struct {
	clk      *clock.Virtual
	coord    *placement.Coordinator
	machines []*aurora.Machine
	names    []string
	apps     []*demoApp
	killed   map[string]bool
	fleet    *telemetry.Fleet
	coordReg *telemetry.Registry
	watch    *telemetry.Watch
}

// defaultFleetSLOs are the objectives the demo fleet is watched under:
// failovers must complete under 50ms of virtual time, and no group may
// ever be left orphaned.
func defaultFleetSLOs() []telemetry.SLO {
	return []telemetry.SLO{
		{Name: "failover-p99", Metric: "fleet.failover.ns", Kind: telemetry.SLOP99Under, Bound: int64(50 * time.Millisecond)},
		{Name: "no-orphans", Metric: "fleet.orphans", Kind: telemetry.SLOMaxUnder, Bound: 1},
	}
}

func buildFleetDemo(nMachines, nGroups int) (*fleetDemo, error) {
	if nMachines < 1 || nGroups < 1 || nGroups > nMachines {
		return nil, fmt.Errorf("need 1 <= groups (%d) <= machines (%d)", nGroups, nMachines)
	}
	d := &fleetDemo{
		clk:    clock.NewVirtual(),
		killed: map[string]bool{},
		fleet:  telemetry.NewFleet(),
	}
	d.coord = placement.New(d.clk, placement.Config{
		SyncEvery:      5 * time.Millisecond,
		HeartbeatEvery: 2 * time.Millisecond,
	})
	d.coordReg = telemetry.New(d.clk)
	d.coord.Instrument(nil, d.coordReg)
	d.watch = telemetry.NewWatch(defaultFleetSLOs())
	d.coord.WatchSLO(d.watch)
	for i := 0; i < nMachines; i++ {
		name := fmt.Sprintf("m%d", i)
		m, err := aurora.NewMachine(aurora.Config{
			StorageBytes: 64 << 20, Clock: d.clk, Name: name, Telemetry: true,
		})
		if err != nil {
			return nil, err
		}
		d.machines = append(d.machines, m)
		d.names = append(d.names, name)
		d.fleet.Add(name, m.Metrics)
		if _, err := d.coord.AddMachine(name, m); err != nil {
			return nil, err
		}
	}
	d.fleet.Add("fleet", d.coordReg)
	// Manage only once every machine is registered — the first group's
	// standby has to land somewhere.
	for i := 0; i < nGroups; i++ {
		m := d.machines[i]
		group := fmt.Sprintf("g%d", i)
		p := m.Spawn(group)
		if _, err := p.Mmap(1<<20, aurora.ProtRead|aurora.ProtWrite, false); err != nil {
			return nil, err
		}
		if _, err := m.Attach(group, p); err != nil {
			return nil, err
		}
		d.apps = append(d.apps, &demoApp{name: group, p: p})
		if _, err := d.coord.Manage(group, fmt.Sprintf("m%d", i), nil); err != nil {
			return nil, err
		}
	}
	return d, nil
}

// run drives the fleet for the given number of 1ms ticks, killing the
// named machine at the halfway point. Each tick the telemetry plane is
// sampled and the SLO watch evaluated; onEvent (optional) sees every
// coordinator decision as it fires.
func (d *fleetDemo) run(ticks int, kill string, onEvent func(placement.Event)) error {
	step := func(a *demoApp) error {
		var buf [8]byte
		for i := 0; i < 20; i++ {
			if err := a.p.ReadMem(vm.UserBase, buf[:]); err != nil {
				return err
			}
			buf[0]++
			if err := a.p.WriteMem(vm.UserBase, buf[:]); err != nil {
				return err
			}
		}
		d.coord.RecordOps(a.name, 20)
		return nil
	}
	for t := 0; t < ticks; t++ {
		if kill != "" && t == ticks/2 {
			if err := d.coord.KillMachine(kill); err != nil {
				return err
			}
			d.killed[kill] = true
			if onEvent != nil {
				fmt.Printf("[%8.3fms] kill       node=%s\n",
					float64(d.clk.Now().Microseconds())/1000, kill)
			}
		}
		for _, a := range d.apps {
			as, ok := d.coord.Assignment(a.name)
			if !ok || as.Orphaned || d.killed[as.Primary] {
				continue
			}
			if err := step(a); err != nil {
				return fmt.Errorf("group %s: %w", a.name, err)
			}
		}
		d.clk.Advance(time.Millisecond)
		for _, e := range d.coord.Tick() {
			if onEvent != nil {
				onEvent(e)
			}
			if e.G != nil {
				for _, a := range d.apps {
					if a.name == e.Group {
						if procs := e.G.Procs(); len(procs) == 1 {
							a.p = procs[0]
						}
					}
				}
			}
		}
		for _, m := range d.machines {
			m.Metrics.Sample()
		}
		d.coordReg.Sample()
		if fired := d.watch.Eval(d.coordReg, d.clk.Now()); len(fired) > 0 {
			d.coordReg.Counter("slo.breaches").Add(int64(len(fired)))
		}
	}
	return nil
}

func cmdFleetStatus(args []string) error {
	fs := flag.NewFlagSet("fleet status", flag.ExitOnError)
	nMachines := fs.Int("machines", 4, "fleet size")
	nGroups := fs.Int("groups", 3, "managed groups (first machines get one each)")
	ticks := fs.Int("ticks", 40, "drive rounds (1ms of virtual time each)")
	kill := fs.String("kill", "", "machine to kill at the halfway tick")
	fs.Parse(args)

	d, err := buildFleetDemo(*nMachines, *nGroups)
	if err != nil {
		return err
	}
	if err := d.run(*ticks, *kill, func(e placement.Event) { fmt.Println(e) }); err != nil {
		return err
	}
	fmt.Print(d.coord.Status())
	return nil
}
