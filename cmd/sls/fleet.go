package main

// The `sls fleet` verb: the placement coordinator's inspection surface.
// Machine images are single-machine artifacts, so the fleet command runs a
// deterministic in-memory demo fleet — N machines, one counter group each
// under the coordinator — and prints the coordinator's status and decision
// log. With -kill, one machine dies mid-run and the output shows the
// heartbeat detector noticing, the failovers, and the reseeded standbys:
// the quickest way to see the placement layer work without writing a
// scenario file.

import (
	"flag"
	"fmt"
	"time"

	"aurora"
	"aurora/internal/clock"
	"aurora/internal/placement"
	"aurora/internal/vm"
)

func cmdFleet(args []string) error {
	if len(args) < 1 {
		return fmt.Errorf("usage: sls fleet status [-machines N] [-groups G] [-ticks T] [-kill MACHINE]")
	}
	switch args[0] {
	case "status":
		return cmdFleetStatus(args[1:])
	default:
		return fmt.Errorf("unknown fleet subcommand %q (want status)", args[0])
	}
}

func cmdFleetStatus(args []string) error {
	fs := flag.NewFlagSet("fleet status", flag.ExitOnError)
	nMachines := fs.Int("machines", 4, "fleet size")
	nGroups := fs.Int("groups", 3, "managed groups (first machines get one each)")
	ticks := fs.Int("ticks", 40, "drive rounds (1ms of virtual time each)")
	kill := fs.String("kill", "", "machine to kill at the halfway tick")
	fs.Parse(args)
	if *nMachines < 1 || *nGroups < 1 || *nGroups > *nMachines {
		return fmt.Errorf("need 1 <= groups (%d) <= machines (%d)", *nGroups, *nMachines)
	}

	clk := clock.NewVirtual()
	coord := placement.New(clk, placement.Config{
		SyncEvery:      5 * time.Millisecond,
		HeartbeatEvery: 2 * time.Millisecond,
	})
	type app struct {
		name string
		p    *aurora.Proc
	}
	var apps []*app
	killed := map[string]bool{}
	machines := make([]*aurora.Machine, *nMachines)
	for i := 0; i < *nMachines; i++ {
		m, err := aurora.NewMachine(aurora.Config{StorageBytes: 64 << 20, Clock: clk})
		if err != nil {
			return err
		}
		machines[i] = m
		if _, err := coord.AddMachine(fmt.Sprintf("m%d", i), m); err != nil {
			return err
		}
	}
	// Manage only once every machine is registered — the first group's
	// standby has to land somewhere.
	for i := 0; i < *nGroups; i++ {
		m := machines[i]
		group := fmt.Sprintf("g%d", i)
		p := m.Spawn(group)
		if _, err := p.Mmap(1<<20, aurora.ProtRead|aurora.ProtWrite, false); err != nil {
			return err
		}
		if _, err := m.Attach(group, p); err != nil {
			return err
		}
		apps = append(apps, &app{name: group, p: p})
		if _, err := coord.Manage(group, fmt.Sprintf("m%d", i), nil); err != nil {
			return err
		}
	}

	step := func(a *app) error {
		var buf [8]byte
		for i := 0; i < 20; i++ {
			if err := a.p.ReadMem(vm.UserBase, buf[:]); err != nil {
				return err
			}
			buf[0]++
			if err := a.p.WriteMem(vm.UserBase, buf[:]); err != nil {
				return err
			}
		}
		coord.RecordOps(a.name, 20)
		return nil
	}
	for t := 0; t < *ticks; t++ {
		if *kill != "" && t == *ticks/2 {
			if err := coord.KillMachine(*kill); err != nil {
				return err
			}
			killed[*kill] = true
			fmt.Printf("[%8.3fms] kill       node=%s\n", float64(clk.Now().Microseconds())/1000, *kill)
		}
		for _, a := range apps {
			as, ok := coord.Assignment(a.name)
			if !ok || as.Orphaned || killed[as.Primary] {
				continue
			}
			if err := step(a); err != nil {
				return fmt.Errorf("group %s: %w", a.name, err)
			}
		}
		clk.Advance(time.Millisecond)
		for _, e := range coord.Tick() {
			fmt.Println(e)
			if e.G != nil {
				for _, a := range apps {
					if a.name == e.Group {
						if procs := e.G.Procs(); len(procs) == 1 {
							a.p = procs[0]
						}
					}
				}
			}
		}
	}
	fmt.Print(coord.Status())
	return nil
}
