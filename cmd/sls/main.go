// Command sls is the Aurora command-line interface (Table 2 of the paper),
// operating on a simulated machine image kept in a real file. Each
// invocation boots the machine from the image (recovering the store from
// its last complete checkpoint), performs one operation, and saves the
// image back — so persistence is demonstrated across ordinary process
// lifetimes, just as Aurora persists across reboots.
//
// The built-in demo application is a counter that keeps its entire state in
// simulated process memory. Attach it, step it, kill the machine whenever
// you like; restore continues exactly where the last checkpoint left it.
//
//	sls -img m.img init
//	sls -img m.img attach -name demo -steps 500
//	sls -img m.img ps
//	sls -img m.img restore -name demo -steps 500
//	sls -img m.img history
//	sls -img m.img timetravel -name demo -epoch 3
//	sls -img m.img dump -name demo -o demo.core
//	sls -img a.img send -name demo | sls -img b.img recv
package main

import (
	"encoding/binary"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"aurora"
	"aurora/internal/elfcore"
	"aurora/internal/vm"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "sls:", err)
		os.Exit(1)
	}
}

func run() error {
	img := flag.String("img", "aurora.img", "machine image file")
	flag.Parse()
	if flag.NArg() < 1 {
		usage()
		return fmt.Errorf("no command")
	}
	cmd := flag.Arg(0)
	args := flag.Args()[1:]

	switch cmd {
	case "init":
		return cmdInit(*img)
	case "attach":
		return cmdAttach(*img, args)
	case "checkpoint":
		return cmdCheckpoint(*img, args)
	case "restore", "resume":
		return cmdRestore(*img, args)
	case "suspend":
		return cmdSuspend(*img, args)
	case "ps":
		return cmdPS(*img)
	case "history":
		return cmdHistory(*img)
	case "timetravel":
		return cmdTimeTravel(*img, args)
	case "dump":
		return cmdDump(*img, args)
	case "send":
		return cmdSend(*img, args)
	case "recv":
		return cmdRecv(*img)
	case "replicate":
		return cmdReplicate(*img, args)
	case "fsck":
		return cmdFsck(*img)
	case "inspect":
		return cmdInspect(*img, args)
	case "audit":
		return cmdAudit(*img, args)
	case "flight":
		return cmdFlight(*img, args)
	case "trace":
		return cmdTrace(args)
	case "metrics":
		return cmdMetrics(args)
	case "top":
		return cmdTop(args)
	case "scenario":
		return cmdScenario(args)
	case "fleet":
		return cmdFleet(args)
	default:
		usage()
		return fmt.Errorf("unknown command %q", cmd)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: sls [-img FILE] COMMAND
commands:
  init                              format a new machine image
  attach -name N [-steps K]         run the demo app under persistence
  checkpoint -name N                take a named checkpoint
  restore -name N [-steps K]        restore the app and continue it
          [-speculative]            run before validation; pages are
                                    confirmed against the image behind it
  suspend -name N                   suspend the app into the store
  ps                                list persisted applications
  history                           list restorable checkpoint epochs
  timetravel -name N -epoch E       restore an older checkpoint
  dump -name N [-o FILE]            write an ELF coredump
  send -name N                      stream a checkpoint to stdout
  recv                              receive a checkpoint from stdin
  replicate -name N -dst FILE       keep a warm standby in another image,
                                    syncing over a simulated lossy wire
  fsck                              verify store consistency
  inspect [-name N] [-json] [-tail K]
                                    machine summary: store, groups, flight
                                    recorder tail, invariant audit
  audit [-name N]                   run the invariant watchdog once
  flight [-tail K]                  dump the pre-crash flight timeline
  trace [-steps K] [-o FILE]        run the demo under the tracer and
                                    export a Chrome trace-event file
  metrics [-steps K] [-format F]    run the demo under the telemetry
          [-o FILE]                 registry and export it as Prometheus
                                    text (prom) or a JSON snapshot (json)
  top [-machines N] [-groups G]     drive the demo fleet and render a
      [-ticks T] [-kill M]          per-machine metrics table with fleet
                                    counters and SLO breaches
  scenario run [-seed S] [-stretch N] [-artifacts DIR] [-v] FILE|DIR...
                                    execute declarative chaos scenarios
  scenario validate FILE|DIR...     check scenario files without running
  scenario list [-json] FILE|DIR... enumerate a scenario corpus
  fleet status [-machines N] [-groups G] [-ticks T] [-kill M]
                                    run a demo fleet under the placement
                                    coordinator and print its status`)
}

// boot loads the machine image, save writes it back.
func boot(img string) (*aurora.Machine, error) {
	f, err := os.Open(img)
	if err != nil {
		return nil, fmt.Errorf("open image (run 'sls init' first?): %w", err)
	}
	defer f.Close()
	return aurora.BootImage(f, aurora.Config{})
}

func save(m *aurora.Machine, img string) error {
	f, err := os.Create(img)
	if err != nil {
		return err
	}
	defer f.Close()
	return m.SaveImage(f)
}

func cmdInit(img string) error {
	m, err := aurora.NewMachine(aurora.Config{StorageBytes: 1 << 30})
	if err != nil {
		return err
	}
	if err := save(m, img); err != nil {
		return err
	}
	fmt.Printf("formatted %s (epoch %d)\n", img, m.Store.Epoch())
	return nil
}

// The demo counter app: all state in simulated memory at a fixed layout
// (the first mapping of the process): [count u64][label 24 bytes].
const counterRegion = 1 << 20

func counterVA() uint64 { return vm.UserBase }

func stepCounter(p *aurora.Proc, m *aurora.Machine, steps int, g *aurora.Group) (uint64, error) {
	var buf [8]byte
	for i := 0; i < steps; i++ {
		if err := p.ReadMem(counterVA(), buf[:]); err != nil {
			return 0, err
		}
		v := binary.LittleEndian.Uint64(buf[:]) + 1
		binary.LittleEndian.PutUint64(buf[:], v)
		if err := p.WriteMem(counterVA(), buf[:]); err != nil {
			return 0, err
		}
		m.Clock.Advance(500 * time.Microsecond) // app "work"
		if g != nil {
			if _, _, err := g.MaybePeriodic(); err != nil {
				return 0, err
			}
		}
	}
	if err := p.ReadMem(counterVA(), buf[:]); err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint64(buf[:]), nil
}

func cmdAttach(img string, args []string) error {
	fs := flag.NewFlagSet("attach", flag.ExitOnError)
	name := fs.String("name", "demo", "application name")
	steps := fs.Int("steps", 200, "demo app steps to run")
	fs.Parse(args)

	m, err := boot(img)
	if err != nil {
		return err
	}
	p := m.Spawn(*name)
	if _, err := p.Mmap(counterRegion, aurora.ProtRead|aurora.ProtWrite, false); err != nil {
		return err
	}
	g, err := m.Attach(*name, p)
	if err != nil {
		return err
	}
	v, err := stepCounter(p, m, *steps, g)
	if err != nil {
		return err
	}
	st, err := g.Checkpoint(aurora.CkptIncremental)
	if err != nil {
		return err
	}
	if err := g.Barrier(); err != nil {
		return err
	}
	fmt.Printf("%s attached: counter=%d, %d checkpoints, last stop %v\n",
		*name, v, g.Checkpoints(), st.StopTime)
	fmt.Printf("  flush: %d bytes via %d workers (depth %d), encode %v, write %v\n",
		st.FlushBytes, st.FlushWorkers, st.MaxQueueDepth, st.EncodeTime, st.WriteTime)
	return save(m, img)
}

func cmdCheckpoint(img string, args []string) error {
	fs := flag.NewFlagSet("checkpoint", flag.ExitOnError)
	name := fs.String("name", "demo", "application name")
	fs.Parse(args)
	m, err := boot(img)
	if err != nil {
		return err
	}
	g, _, err := m.RestoreLazily(*name)
	if err != nil {
		return err
	}
	st, err := g.Checkpoint(aurora.CkptIncremental)
	if err != nil {
		return err
	}
	if err := g.Barrier(); err != nil {
		return err
	}
	fmt.Printf("checkpointed %s: epoch %d, stop %v\n", *name, st.Epoch, st.StopTime)
	fmt.Printf("  flush: %d bytes via %d workers (depth %d), encode %v, write %v\n",
		st.FlushBytes, st.FlushWorkers, st.MaxQueueDepth, st.EncodeTime, st.WriteTime)
	return save(m, img)
}

func cmdRestore(img string, args []string) error {
	fs := flag.NewFlagSet("restore", flag.ExitOnError)
	name := fs.String("name", "demo", "application name")
	steps := fs.Int("steps", 200, "demo app steps to continue")
	speculative := fs.Bool("speculative", false, "speculative restore: run immediately, validate pages in the background")
	fs.Parse(args)

	m, err := boot(img)
	if err != nil {
		return err
	}
	// Forensics first: what the machine was doing before it went down.
	if evs, _, ok, ferr := m.RecoveredFlight(); ferr == nil && ok {
		const tail = 8
		if len(evs) > tail {
			evs = evs[len(evs)-tail:]
		}
		fmt.Printf("pre-crash flight tail (%d events, 'sls flight' for more):\n", len(evs))
		for _, ev := range evs {
			fmt.Printf("  %s\n", ev)
		}
	}
	restore := m.Restore
	if *speculative {
		restore = m.RestoreSpeculatively
	}
	g, rst, err := restore(*name)
	if err != nil {
		return err
	}
	p := g.Procs()[0]
	before, err := stepCounter(p, m, 0, nil)
	if err != nil {
		return err
	}
	after, err := stepCounter(p, m, *steps, g)
	if err != nil {
		return err
	}
	if _, err := g.Checkpoint(aurora.CkptIncremental); err != nil {
		return err
	}
	if err := g.Barrier(); err != nil {
		return err
	}
	fmt.Printf("%s restored in %v (%d procs): counter %d -> %d\n",
		*name, rst.Time, rst.Procs, before, after)
	if *speculative {
		fmt.Printf("  speculative: first op after %v, %d page(s) speculated, %d validated, %d rollback(s)\n",
			rst.TimeToFirstOp, rst.PagesSpeculated, rst.PagesValidated, rst.Rollbacks)
	}
	return save(m, img)
}

func cmdSuspend(img string, args []string) error {
	fs := flag.NewFlagSet("suspend", flag.ExitOnError)
	name := fs.String("name", "demo", "application name")
	fs.Parse(args)
	m, err := boot(img)
	if err != nil {
		return err
	}
	g, _, err := m.RestoreLazily(*name)
	if err != nil {
		return err
	}
	if err := g.Suspend(); err != nil {
		return err
	}
	fmt.Printf("suspended %s into the store (resume with 'sls restore')\n", *name)
	return save(m, img)
}

func cmdPS(img string) error {
	m, err := boot(img)
	if err != nil {
		return err
	}
	groups, err := m.PersistedGroups()
	if err != nil {
		return err
	}
	if len(groups) == 0 {
		fmt.Println("no persisted applications")
		return nil
	}
	fmt.Printf("%-16s %s\n", "NAME", "EPOCH")
	for _, name := range groups {
		fmt.Printf("%-16s %d\n", name, m.Store.Epoch())
	}
	return nil
}

func cmdHistory(img string) error {
	m, err := boot(img)
	if err != nil {
		return err
	}
	for _, e := range m.History() {
		fmt.Printf("epoch %d\n", e)
	}
	return nil
}

func cmdTimeTravel(img string, args []string) error {
	fs := flag.NewFlagSet("timetravel", flag.ExitOnError)
	name := fs.String("name", "demo", "application name")
	epoch := fs.Uint64("epoch", 0, "checkpoint epoch to restore")
	fs.Parse(args)
	m, err := boot(img)
	if err != nil {
		return err
	}
	g, _, err := m.RestoreAt(*name, aurora.Epoch(*epoch))
	if err != nil {
		return err
	}
	v, err := stepCounter(g.Procs()[0], m, 0, nil)
	if err != nil {
		return err
	}
	fmt.Printf("%s at epoch %d: counter=%d\n", *name, *epoch, v)
	return nil
}

func cmdDump(img string, args []string) error {
	fs := flag.NewFlagSet("dump", flag.ExitOnError)
	name := fs.String("name", "demo", "application name")
	out := fs.String("o", "core", "output file")
	fs.Parse(args)
	m, err := boot(img)
	if err != nil {
		return err
	}
	g, _, err := m.Restore(*name)
	if err != nil {
		return err
	}
	f, err := os.Create(*out)
	if err != nil {
		return err
	}
	defer f.Close()
	n, err := elfcore.Write(f, g.Procs()[0])
	if err != nil {
		return err
	}
	fmt.Printf("wrote %s: %d bytes\n", *out, n)
	return nil
}

func cmdSend(img string, args []string) error {
	fs := flag.NewFlagSet("send", flag.ExitOnError)
	name := fs.String("name", "demo", "application name")
	fs.Parse(args)
	m, err := boot(img)
	if err != nil {
		return err
	}
	g, _, err := m.RestoreLazily(*name)
	if err != nil {
		return err
	}
	if _, err := g.Checkpoint(aurora.CkptIncremental); err != nil {
		return err
	}
	if err := g.Barrier(); err != nil {
		return err
	}
	return g.Send(os.Stdout)
}

// cmdReplicate keeps a warm standby of the named application in a second
// machine image, shipping the seed and every sync over the simulated lossy
// network (sls replicate -name demo -dst standby.img -syncs 3 -drop 0.05).
// Between syncs the demo app keeps running, so the standby trails the
// primary by one checkpoint — exactly the paper's continuous-checkpoint
// high-availability mode.
func cmdReplicate(img string, args []string) error {
	fs := flag.NewFlagSet("replicate", flag.ExitOnError)
	name := fs.String("name", "demo", "application name")
	dstImg := fs.String("dst", "standby.img", "standby machine image file")
	syncs := fs.Int("syncs", 3, "delta syncs to ship after the seed")
	steps := fs.Int("steps", 50, "demo app steps between syncs")
	drop := fs.Float64("drop", 0, "forward-path frame drop probability [0,1)")
	dup := fs.Float64("dup", 0, "forward-path frame duplication probability")
	corrupt := fs.Float64("corrupt", 0, "forward-path frame corruption probability")
	seed := fs.Int64("seed", 1, "fault-plan PRNG seed")
	fs.Parse(args)

	src, err := boot(img)
	if err != nil {
		return err
	}
	dst, err := boot(*dstImg)
	if err != nil {
		return fmt.Errorf("standby %s: %w", *dstImg, err)
	}
	g, _, err := src.Restore(*name)
	if err != nil {
		return err
	}
	conn := src.NewConn(&aurora.NetConfig{
		Fwd: aurora.NetPlan{Seed: *seed, DropProb: *drop, DupProb: *dup, CorruptProb: *corrupt},
		Rev: aurora.NetPlan{Seed: *seed + 1, DropProb: *drop},
	})
	rep, err := g.ReplicateToVia(dst.SLS, conn)
	if err != nil {
		return err
	}
	fmt.Printf("seeded %s on %s: %d stream bytes, %d wire bytes, lag %v\n",
		*name, *dstImg, rep.LastBytes, rep.WireBytes, rep.LastLag)

	p := g.Procs()[0]
	for i := 1; i <= *syncs; i++ {
		v, err := stepCounter(p, src, *steps, nil)
		if err != nil {
			return err
		}
		if err := rep.Sync(); err != nil {
			return err
		}
		fmt.Printf("sync %d: counter=%d, %d bytes, lag %v\n", i, v, rep.LastBytes, rep.LastLag)
	}
	st := conn.Stats()
	fmt.Printf("replicated %s: %d syncs, %d stream bytes, %d wire bytes, %d retransmits, %d backoffs\n",
		*name, rep.Syncs, rep.BytesTotal, rep.WireBytes, rep.Retransmits, rep.Backoffs)
	fmt.Printf("  wire: %d frames sent, %d acks seen, %d dup-discards, %d corrupt-drops\n",
		st.FramesSent, st.AcksSeen, st.DupDiscards, st.CorruptDrops)
	if err := save(src, img); err != nil {
		return err
	}
	return save(dst, *dstImg)
}

func cmdFsck(img string) error {
	m, err := boot(img)
	if err != nil {
		return err
	}
	rep := m.Store.Fsck()
	fmt.Printf("%d objects (%d journals), %d blocks, %d retained epochs\n",
		rep.Objects, rep.Journals, rep.Blocks, rep.RetainedEpochs)
	if !rep.OK() {
		for _, p := range rep.Problems {
			fmt.Println("PROBLEM:", p)
		}
		return fmt.Errorf("%d problems found", len(rep.Problems))
	}
	fmt.Println("store is consistent")
	return nil
}

// cmdInspect prints the machine's /proc-like introspection page: store
// occupancy, per-group process/VM/descriptor tables, the flight-recorder
// tail (live and pre-crash), and an invariant-audit report. With -name the
// group is first restored (lazily, without saving the image back) so its
// live tables appear; without it only persisted state shows.
func cmdInspect(img string, args []string) error {
	fs := flag.NewFlagSet("inspect", flag.ExitOnError)
	name := fs.String("name", "", "restore this group before inspecting")
	asJSON := fs.Bool("json", false, "emit machine-readable JSON")
	tail := fs.Int("tail", 16, "flight-recorder events to show")
	fs.Parse(args)

	m, err := boot(img)
	if err != nil {
		return err
	}
	if *name != "" {
		if _, _, err := m.RestoreLazily(*name); err != nil {
			return err
		}
	}
	r := m.Inspect(*tail)
	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(r)
	}
	fmt.Print(r.Text())
	return nil
}

// cmdAudit runs the invariant watchdog once and fails if anything is wrong.
func cmdAudit(img string, args []string) error {
	fs := flag.NewFlagSet("audit", flag.ExitOnError)
	name := fs.String("name", "", "restore this group before auditing")
	fs.Parse(args)

	m, err := boot(img)
	if err != nil {
		return err
	}
	if *name != "" {
		if _, _, err := m.RestoreLazily(*name); err != nil {
			return err
		}
	}
	rep := m.Audit()
	fmt.Println(rep)
	if !rep.OK() {
		return fmt.Errorf("%d invariant violations", len(rep.Violations))
	}
	return nil
}

// cmdFlight dumps the forensic timeline: the flight-recorder ring persisted
// by the machine's last completed checkpoint — the last N things the system
// did before it stopped, surviving power cuts and torn writes like any
// other object in the store.
func cmdFlight(img string, args []string) error {
	fs := flag.NewFlagSet("flight", flag.ExitOnError)
	tail := fs.Int("tail", 32, "events to show")
	fs.Parse(args)

	m, err := boot(img)
	if err != nil {
		return err
	}
	evs, seq, ok, err := m.RecoveredFlight()
	if err != nil {
		return fmt.Errorf("flight ring: %w", err)
	}
	if !ok {
		fmt.Println("no flight timeline on this image (no completed checkpoint yet)")
		return nil
	}
	if len(evs) > *tail {
		evs = evs[len(evs)-*tail:]
	}
	fmt.Printf("pre-crash flight timeline (%d events, seq %d):\n", len(evs), seq)
	for _, ev := range evs {
		fmt.Printf("  %s\n", ev)
	}
	return nil
}

// cmdTrace runs a self-contained demo scenario on a fresh traced machine —
// attach, periodic checkpoints, power loss, lazy restore, continue — and
// exports the virtual timeline as a Chrome trace-event file (load it in
// ui.perfetto.dev or chrome://tracing) plus a text rollup on stdout. The
// machine image is not touched; the scenario is its own world.
func cmdTrace(args []string) error {
	fs := flag.NewFlagSet("trace", flag.ExitOnError)
	name := fs.String("name", "demo", "application name")
	steps := fs.Int("steps", 200, "demo app steps per phase")
	out := fs.String("o", "trace.json", "Chrome trace-event output file")
	fs.Parse(args)

	m, err := aurora.NewMachine(aurora.Config{StorageBytes: 1 << 30, Trace: true})
	if err != nil {
		return err
	}
	p := m.Spawn(*name)
	if _, err := p.Mmap(counterRegion, aurora.ProtRead|aurora.ProtWrite, false); err != nil {
		return err
	}
	g, err := m.Attach(*name, p)
	if err != nil {
		return err
	}
	if _, err := stepCounter(p, m, *steps, g); err != nil {
		return err
	}
	if _, err := g.Checkpoint(aurora.CkptIncremental); err != nil {
		return err
	}
	if err := g.Barrier(); err != nil {
		return err
	}
	m2, err := m.Crash() // the tracer rides across the reboot
	if err != nil {
		return err
	}
	g2, _, err := m2.RestoreLazily(*name)
	if err != nil {
		return err
	}
	v, err := stepCounter(g2.Procs()[0], m2, *steps, g2)
	if err != nil {
		return err
	}

	f, err := os.Create(*out)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := m2.Tracer.WriteChrome(f); err != nil {
		return err
	}
	fmt.Print(m2.Tracer.Rollup())
	fmt.Printf("counter ended at %d; trace written to %s\n", v, *out)
	return nil
}

func cmdRecv(img string) error {
	m, err := boot(img)
	if err != nil {
		return err
	}
	name, err := m.SLS.Recv(os.Stdin)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "received %q\n", name)
	return save(m, img)
}
