package main

// The `sls scenario` verb family: the declarative chaos engine's CLI.
// Scenarios are data files (YAML or JSON) declaring a fleet, a workload
// mix, timed fault events, and assertions; the runner executes them on one
// shared virtual timeline, deterministically per seed. `validate` checks a
// corpus without running it, `list` enumerates one (optionally as a JSON
// matrix for CI), and `run` executes and reports.

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"aurora/internal/scenario"
)

func cmdScenario(args []string) error {
	if len(args) < 1 {
		return fmt.Errorf("usage: sls scenario run|validate|list ...")
	}
	switch args[0] {
	case "run":
		return cmdScenarioRun(args[1:])
	case "validate":
		return cmdScenarioValidate(args[1:])
	case "list":
		return cmdScenarioList(args[1:])
	default:
		return fmt.Errorf("unknown scenario subcommand %q (want run, validate, or list)", args[0])
	}
}

// scenarioPaths expands arguments into scenario files: a directory becomes
// its corpus, a file is itself.
func scenarioPaths(args []string) ([]string, error) {
	var out []string
	for _, a := range args {
		info, err := os.Stat(a)
		if err != nil {
			return nil, err
		}
		if info.IsDir() {
			files, err := scenario.Discover(a)
			if err != nil {
				return nil, err
			}
			out = append(out, files...)
			continue
		}
		out = append(out, a)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no scenario files given")
	}
	return out, nil
}

func cmdScenarioRun(args []string) error {
	fs := flag.NewFlagSet("scenario run", flag.ExitOnError)
	seed := fs.Int64("seed", 0, "override the scenario seed (0 keeps the declared one)")
	stretch := fs.Int64("stretch", 0, "multiply the scenario duration (soak runs)")
	artifacts := fs.String("artifacts", "", "directory for per-scenario forensic artifacts")
	verbose := fs.Bool("v", false, "log events as they fire")
	failArtifacts := fs.Bool("artifacts-on-fail", false, "write artifacts only for failing scenarios")
	fs.Parse(args)

	paths, err := scenarioPaths(fs.Args())
	if err != nil {
		return err
	}
	failed := 0
	for _, path := range paths {
		sc, err := scenario.Load(path)
		if err != nil {
			return err
		}
		opts := scenario.RunOptions{Seed: *seed, Stretch: *stretch}
		if *verbose {
			opts.Logf = func(format string, a ...any) {
				fmt.Printf("  | "+format+"\n", a...)
			}
		}
		res, err := scenario.Run(sc, opts)
		if err != nil {
			return fmt.Errorf("%s: %w", path, err)
		}
		fmt.Print(res.Summary())
		if !res.Passed {
			failed++
		}
		if *artifacts != "" && (!*failArtifacts || !res.Passed) {
			dir := filepath.Join(*artifacts, sc.Name)
			if err := res.WriteArtifacts(dir); err != nil {
				return fmt.Errorf("writing artifacts for %s: %w", sc.Name, err)
			}
			fmt.Printf("  artifacts: %s\n", dir)
		}
	}
	if failed > 0 {
		return fmt.Errorf("%d of %d scenarios failed", failed, len(paths))
	}
	return nil
}

func cmdScenarioValidate(args []string) error {
	fs := flag.NewFlagSet("scenario validate", flag.ExitOnError)
	fs.Parse(args)
	paths, err := scenarioPaths(fs.Args())
	if err != nil {
		return err
	}
	bad := 0
	for _, path := range paths {
		sc, err := scenario.Load(path)
		if err != nil {
			fmt.Printf("INVALID %s\n  %v\n", path, indentErr(err))
			bad++
			continue
		}
		fmt.Printf("ok      %s\n", path)
		// Report the effective values of runner defaults, so a scenario
		// author sees what an unset knob actually runs as.
		for i := range sc.Workloads {
			w := &sc.Workloads[i]
			if w.OpsPerTick <= 0 {
				fmt.Printf("          workload %s: ops_per_tick=%d (default)\n",
					workloadLabel(w), w.EffectiveOpsPerTick())
			}
		}
		for i := range sc.Events {
			e := &sc.Events[i]
			if e.Kind == scenario.EvMigrate && e.Rounds <= 0 {
				fmt.Printf("          event t=%dms migrate %s->%s: rounds=%d (default)\n",
					e.AtMS, e.Group, e.To, e.EffectiveRounds())
			}
		}
		if p := sc.Placement; p != nil {
			cfg := p.EffectiveConfig()
			var defs []string
			if p.SyncEveryMS <= 0 {
				defs = append(defs, fmt.Sprintf("sync_every_ms=%d", cfg.SyncEvery.Milliseconds()))
			}
			if p.HeartbeatEveryMS <= 0 {
				defs = append(defs, fmt.Sprintf("heartbeat_every_ms=%d", cfg.HeartbeatEvery.Milliseconds()))
			}
			if p.DeadAfterMisses <= 0 {
				defs = append(defs, fmt.Sprintf("dead_after_misses=%d", cfg.DeadAfterMisses))
			}
			if p.HotFactor <= 0 {
				defs = append(defs, fmt.Sprintf("hot_factor=%g", cfg.HotFactor))
			}
			if p.MigrateRounds <= 0 {
				defs = append(defs, fmt.Sprintf("migrate_rounds=%d", cfg.MigrateRounds))
			}
			if len(defs) > 0 {
				fmt.Printf("          placement: %s (default)\n", strings.Join(defs, " "))
			}
		}
	}
	if bad > 0 {
		return fmt.Errorf("%d of %d scenarios invalid", bad, len(paths))
	}
	return nil
}

func indentErr(err error) string {
	return strings.ReplaceAll(err.Error(), "\n", "\n  ")
}

// workloadLabel names a workload for validate output: group@machine, or the
// bare machine for group-less (filebench) workloads.
func workloadLabel(w *scenario.WorkloadDecl) string {
	if w.Group != "" {
		return w.Group + "@" + w.Machine
	}
	return w.App + "@" + w.Machine
}

func cmdScenarioList(args []string) error {
	fs := flag.NewFlagSet("scenario list", flag.ExitOnError)
	asJSON := fs.Bool("json", false, "emit a JSON array (CI matrix input)")
	fs.Parse(args)
	paths, err := scenarioPaths(fs.Args())
	if err != nil {
		return err
	}
	type entry struct {
		Name string `json:"name"`
		Path string `json:"path"`
	}
	var entries []entry
	for _, path := range paths {
		sc, err := scenario.Load(path)
		if err != nil {
			return err
		}
		entries = append(entries, entry{Name: sc.Name, Path: path})
	}
	if *asJSON {
		return json.NewEncoder(os.Stdout).Encode(entries)
	}
	for _, e := range entries {
		fmt.Printf("%-24s %s\n", e.Name, e.Path)
	}
	return nil
}
