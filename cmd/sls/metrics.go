package main

// The `sls metrics` and `sls top` verbs: the telemetry plane's CLI
// surface.
//
// `sls metrics` runs a self-contained demo — attach, periodic
// checkpoints, a power cut, restore, continue — on a fresh
// telemetry-enabled machine, sampling the registry on a fixed cadence,
// then exports it as Prometheus text or the deterministic JSON snapshot.
// No image file is touched; the run is its own world, like `sls trace`.
//
// `sls top` drives the same instrumented demo fleet as `sls fleet
// status` but renders the end state as a per-machine metrics table —
// checkpoints, stop-time p99, WAL commits, restores, replica syncs —
// with the coordinator's fleet counters and any SLO breaches below it.

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"aurora"
	"aurora/internal/telemetry"
)

func cmdMetrics(args []string) error {
	fs := flag.NewFlagSet("metrics", flag.ExitOnError)
	name := fs.String("name", "demo", "application name")
	steps := fs.Int("steps", 200, "demo app steps per phase")
	sampleEvery := fs.Int("sample-every", 20, "steps between registry samples")
	format := fs.String("format", "prom", "output format: prom or json")
	out := fs.String("o", "", "output file (default stdout)")
	fs.Parse(args)
	if *format != "prom" && *format != "json" {
		return fmt.Errorf("unknown -format %q (want prom or json)", *format)
	}

	m, err := aurora.NewMachine(aurora.Config{
		StorageBytes: 1 << 30, Name: "demo-machine", Telemetry: true,
	})
	if err != nil {
		return err
	}
	p := m.Spawn(*name)
	if _, err := p.Mmap(counterRegion, aurora.ProtRead|aurora.ProtWrite, false); err != nil {
		return err
	}
	g, err := m.Attach(*name, p)
	if err != nil {
		return err
	}
	sampled := func(m *aurora.Machine, p *aurora.Proc, g *aurora.Group) error {
		for done := 0; done < *steps; done += *sampleEvery {
			n := *sampleEvery
			if rem := *steps - done; rem < n {
				n = rem
			}
			if _, err := stepCounter(p, m, n, g); err != nil {
				return err
			}
			m.Metrics.Sample()
		}
		return nil
	}
	if err := sampled(m, p, g); err != nil {
		return err
	}
	if _, err := g.Checkpoint(aurora.CkptIncremental); err != nil {
		return err
	}
	if err := g.Barrier(); err != nil {
		return err
	}
	m2, err := m.Crash() // the registry rides across the reboot
	if err != nil {
		return err
	}
	g2, _, err := m2.RestoreLazily(*name)
	if err != nil {
		return err
	}
	if err := sampled(m2, g2.Procs()[0], g2); err != nil {
		return err
	}
	m2.Metrics.Sample()

	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	if *format == "json" {
		return telemetry.WriteJSON(w, m2.Metrics.Snapshot(m2.Name()))
	}
	return m2.Metrics.WritePrometheus(w, m2.Name())
}

func cmdTop(args []string) error {
	fs := flag.NewFlagSet("top", flag.ExitOnError)
	nMachines := fs.Int("machines", 4, "fleet size")
	nGroups := fs.Int("groups", 3, "managed groups (first machines get one each)")
	ticks := fs.Int("ticks", 40, "drive rounds (1ms of virtual time each)")
	kill := fs.String("kill", "", "machine to kill at the halfway tick")
	fs.Parse(args)

	d, err := buildFleetDemo(*nMachines, *nGroups)
	if err != nil {
		return err
	}
	if err := d.run(*ticks, *kill, nil); err != nil {
		return err
	}

	fmt.Printf("%-8s %-5s %8s %6s %10s %6s %9s %6s\n",
		"MACHINE", "UP", "LOAD", "CKPTS", "STOP-P99", "WAL", "RESTORES", "SYNCS")
	for i, m := range d.machines {
		name := d.names[i]
		up := "yes"
		if d.killed[name] {
			up = "DEAD"
		}
		reg := m.Metrics
		fmt.Printf("%-8s %-5s %8d %6d %10s %6d %9d %6d\n",
			name, up,
			d.coordReg.Gauge("fleet.load."+name).Value(),
			reg.Counter("sls.ckpt.total").Value(),
			nsStr(reg.Quantile("sls.stop.ns", 0.99)),
			reg.Counter("sls.wal.commits").Value(),
			reg.Counter("sls.restores").Value(),
			reg.Counter("sls.replica.syncs").Value())
	}
	fmt.Printf("\nfleet: alive=%d deaths=%d failovers=%d reseeds=%d orphans=%d sync-errors=%d\n",
		d.coordReg.Gauge("fleet.alive").Value(),
		d.coordReg.Counter("fleet.deaths").Value(),
		d.coordReg.Counter("fleet.failovers").Value(),
		d.coordReg.Counter("fleet.reseeds").Value(),
		d.coordReg.Counter("fleet.orphans").Value(),
		d.coordReg.Counter("fleet.sync_errors").Value())
	if p99 := d.coordReg.Quantile("fleet.failover.ns", 0.99); p99 > 0 {
		fmt.Printf("fleet: failover p99 %s, ckpt stop p99 %s fleet-wide\n",
			nsStr(p99), nsStr(d.fleet.Quantile("sls.stop.ns", 0.99)))
	}
	if breaches := d.watch.Breaches(); len(breaches) > 0 {
		fmt.Println()
		for _, b := range breaches {
			fmt.Printf("BREACH %s\n", b)
		}
	} else {
		fmt.Println("slo: all objectives met")
	}
	return nil
}

// nsStr renders a nanosecond quantity compactly for the table.
func nsStr(ns int64) string {
	switch d := time.Duration(ns); {
	case ns <= 0:
		return "-"
	case d >= time.Millisecond:
		return fmt.Sprintf("%.2fms", float64(ns)/1e6)
	case d >= time.Microsecond:
		return fmt.Sprintf("%.1fus", float64(ns)/1e3)
	default:
		return fmt.Sprintf("%dns", ns)
	}
}
