package main

import (
	"bytes"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// End-to-end CLI test: builds the sls binary and drives the full verb set
// against machine images on disk — the closest thing to the paper's
// artifact walkthrough.

func buildCLI(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "sls")
	cmd := exec.Command("go", "build", "-o", bin, ".")
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	return bin
}

func runCLI(t *testing.T, bin string, stdin []byte, args ...string) string {
	t.Helper()
	cmd := exec.Command(bin, args...)
	if stdin != nil {
		cmd.Stdin = bytes.NewReader(stdin)
	}
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("sls %v: %v\n%s", args, err, out)
	}
	return string(out)
}

func TestCLIEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("builds a binary")
	}
	bin := buildCLI(t)
	dir := t.TempDir()
	img := filepath.Join(dir, "m.img")

	runCLI(t, bin, nil, "-img", img, "init")

	out := runCLI(t, bin, nil, "-img", img, "attach", "-name", "demo", "-steps", "100")
	if !strings.Contains(out, "counter=100") {
		t.Fatalf("attach output: %s", out)
	}

	// A fresh process (a "reboot") continues the counter.
	out = runCLI(t, bin, nil, "-img", img, "restore", "-name", "demo", "-steps", "100")
	if !strings.Contains(out, "counter 100 -> 200") {
		t.Fatalf("restore output: %s", out)
	}

	out = runCLI(t, bin, nil, "-img", img, "ps")
	if !strings.Contains(out, "demo") {
		t.Fatalf("ps output: %s", out)
	}

	out = runCLI(t, bin, nil, "-img", img, "history")
	if !strings.Contains(out, "epoch") {
		t.Fatalf("history output: %s", out)
	}

	// Time travel to a mid-history epoch shows an older counter. (The
	// earliest epochs predate the demo app's first checkpoint.)
	hist := strings.Fields(runCLI(t, bin, nil, "-img", img, "history"))
	epoch := hist[(len(hist)/2)|1] // a middle "epoch N" value
	out = runCLI(t, bin, nil, "-img", img, "timetravel", "-name", "demo", "-epoch", epoch)
	if !strings.Contains(out, "counter=") {
		t.Fatalf("timetravel output: %s", out)
	}

	// Coredump.
	core := filepath.Join(dir, "demo.core")
	runCLI(t, bin, nil, "-img", img, "dump", "-name", "demo", "-o", core)
	data, err := os.ReadFile(core)
	if err != nil || len(data) < 64 || string(data[:4]) != "\x7fELF" {
		t.Fatalf("coredump invalid: err=%v len=%d", err, len(data))
	}

	// Migration: send from m.img, receive into b.img.
	img2 := filepath.Join(dir, "b.img")
	runCLI(t, bin, nil, "-img", img2, "init")
	stream := runRaw(t, bin, nil, "-img", img, "send", "-name", "demo")
	runCLI(t, bin, stream, "-img", img2, "recv")
	out = runCLI(t, bin, nil, "-img", img2, "restore", "-name", "demo", "-steps", "10")
	if !strings.Contains(out, "counter 200 -> 210") {
		t.Fatalf("migrated restore output: %s", out)
	}

	// Suspend, resume, fsck.
	runCLI(t, bin, nil, "-img", img, "suspend", "-name", "demo")
	out = runCLI(t, bin, nil, "-img", img, "restore", "-name", "demo", "-steps", "1")
	if !strings.Contains(out, "-> 201") {
		t.Fatalf("post-suspend restore: %s", out)
	}
	out = runCLI(t, bin, nil, "-img", img, "fsck")
	if !strings.Contains(out, "consistent") {
		t.Fatalf("fsck output: %s", out)
	}
}

// TestCLIReplicate drives the replicate verb over a lossy simulated wire:
// the standby image must end up restorable at the last synced counter.
func TestCLIReplicate(t *testing.T) {
	if testing.Short() {
		t.Skip("builds a binary")
	}
	bin := buildCLI(t)
	dir := t.TempDir()
	img := filepath.Join(dir, "primary.img")
	stb := filepath.Join(dir, "standby.img")

	runCLI(t, bin, nil, "-img", img, "init")
	runCLI(t, bin, nil, "-img", stb, "init")
	runCLI(t, bin, nil, "-img", img, "attach", "-name", "demo", "-steps", "100")

	out := runCLI(t, bin, nil, "-img", img, "replicate",
		"-name", "demo", "-dst", stb, "-syncs", "2", "-steps", "25",
		"-drop", "0.05", "-dup", "0.05", "-corrupt", "0.05", "-seed", "7")
	if !strings.Contains(out, "sync 2: counter=150") {
		t.Fatalf("replicate output: %s", out)
	}
	if !strings.Contains(out, "2 syncs") && !strings.Contains(out, "3 syncs") {
		t.Fatalf("replicate output missing totals: %s", out)
	}

	// Failover: the standby image restores the app at the last synced state.
	out = runCLI(t, bin, nil, "-img", stb, "restore", "-name", "demo", "-steps", "10")
	if !strings.Contains(out, "counter 150 -> 160") {
		t.Fatalf("standby restore output: %s", out)
	}
	out = runCLI(t, bin, nil, "-img", stb, "fsck")
	if !strings.Contains(out, "consistent") {
		t.Fatalf("standby fsck output: %s", out)
	}
}

// runRaw returns stdout alone (binary streams).
func runRaw(t *testing.T, bin string, stdin []byte, args ...string) []byte {
	t.Helper()
	cmd := exec.Command(bin, args...)
	if stdin != nil {
		cmd.Stdin = bytes.NewReader(stdin)
	}
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		t.Fatalf("sls %v: %v\n%s", args, err, stderr.String())
	}
	return stdout.Bytes()
}

func TestCLIBadUsage(t *testing.T) {
	if testing.Short() {
		t.Skip("builds a binary")
	}
	bin := buildCLI(t)
	if err := exec.Command(bin, "bogus-verb").Run(); err == nil {
		t.Fatal("unknown verb succeeded")
	}
	if err := exec.Command(bin, "-img", "/nonexistent/x.img", "ps").Run(); err == nil {
		t.Fatal("missing image succeeded")
	}
}
