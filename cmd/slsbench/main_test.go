package main

import (
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

func TestSlsbenchQuickTable5(t *testing.T) {
	if testing.Short() {
		t.Skip("builds a binary")
	}
	bin := filepath.Join(t.TempDir(), "slsbench")
	if out, err := exec.Command("go", "build", "-o", bin, ".").CombinedOutput(); err != nil {
		t.Fatalf("build: %v\n%s", err, out)
	}
	out, err := exec.Command(bin, "-quick", "table5").CombinedOutput()
	if err != nil {
		t.Fatalf("run: %v\n%s", err, out)
	}
	s := string(out)
	for _, want := range []string{"Table 5", "Incremental", "Journaled", "4.0 KiB"} {
		if !strings.Contains(s, want) {
			t.Fatalf("output missing %q:\n%s", want, s)
		}
	}
	// Unknown experiments are rejected.
	if err := exec.Command(bin, "not-an-experiment").Run(); err == nil {
		t.Fatal("unknown experiment accepted")
	}
	if err := exec.Command(bin).Run(); err == nil {
		t.Fatal("no-args accepted")
	}
}
