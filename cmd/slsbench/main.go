// Command slsbench regenerates the paper's evaluation (§9): one subcommand
// per table and figure, printing the same rows or series the paper reports.
//
//	slsbench all                 # everything, full scale
//	slsbench -quick all          # everything, CI-sized
//	slsbench table5 fig4         # a subset
//
// Experiments: table1, fig3a, fig3b, fig3c, fig3d, table4, table5, table6,
// fig4, fig5, fig6, table7.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"aurora/internal/experiments"
)

type runner struct {
	name string
	fn   func(experiments.Scale) (renderer, error)
}

type renderer interface{ Render() string }

// wrap adapts the typed experiment functions.
func wrap[T renderer](fn func(experiments.Scale) (T, error)) func(experiments.Scale) (renderer, error) {
	return func(s experiments.Scale) (renderer, error) { return fn(s) }
}

func main() {
	quick := flag.Bool("quick", false, "CI-sized working sets")
	flag.Parse()

	scale := experiments.Full
	if *quick {
		scale = experiments.Quick
	}

	all := []runner{
		{"table1", wrap(experiments.Table1)},
		{"fig3a", wrap(experiments.Fig3a)},
		{"fig3b", wrap(experiments.Fig3b)},
		{"fig3c", wrap(experiments.Fig3c)},
		{"fig3d", wrap(experiments.Fig3d)},
		{"table4", func(experiments.Scale) (renderer, error) { return experiments.Table4() }},
		{"table5", wrap(experiments.Table5)},
		{"table6", wrap(experiments.Table6)},
		{"fig4", wrap(experiments.Fig4)},
		{"fig5", wrap(experiments.Fig5)},
		{"fig6", wrap(experiments.Fig6)},
		{"table7", wrap(experiments.Table7)},
	}
	byName := map[string]runner{}
	for _, r := range all {
		byName[r.name] = r
	}

	args := flag.Args()
	if len(args) == 0 {
		fmt.Fprintln(os.Stderr, "usage: slsbench [-quick] all | EXPERIMENT...")
		os.Exit(2)
	}
	var todo []runner
	for _, a := range args {
		if a == "all" {
			todo = all
			break
		}
		r, ok := byName[a]
		if !ok {
			fmt.Fprintf(os.Stderr, "slsbench: unknown experiment %q\n", a)
			os.Exit(2)
		}
		todo = append(todo, r)
	}

	for _, r := range todo {
		start := time.Now()
		res, err := r.fn(scale)
		if err != nil {
			fmt.Fprintf(os.Stderr, "slsbench: %s: %v\n", r.name, err)
			os.Exit(1)
		}
		fmt.Println(res.Render())
		fmt.Printf("[%s completed in %v wall time]\n\n", r.name, time.Since(start).Round(time.Millisecond))
	}
}
