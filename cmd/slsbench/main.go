// Command slsbench regenerates the paper's evaluation (§9): one subcommand
// per table and figure, printing the same rows or series the paper reports.
//
//	slsbench all                 # everything, full scale
//	slsbench -quick all          # everything, CI-sized
//	slsbench table5 fig4         # a subset
//
// Experiments: table1, fig3a, fig3b, fig3c, fig3d, table4, table5, table6,
// fig4, fig5, fig6, table7, repl (replication lag under lossy wires),
// walwindow, fleet, restore (serial vs speculative time to first request).
//
// With -trace FILE, a checkpoint+crash+lazy-restore scenario runs under the
// virtual-clock tracer and its timeline is written to FILE as Chrome
// trace-event JSON (loadable in ui.perfetto.dev), with a text rollup on
// stdout. -trace works standalone, with no experiment arguments.
//
// With -inspect, the same scenario additionally prints the machine's
// introspection page after the restore — store/group tables, the recovered
// pre-crash flight timeline, and the invariant-audit report — and fails if
// the audit finds violations.
//
// With -scenario PATH (a scenario file or a corpus directory), the
// declarative chaos engine runs each scenario as a benchmark: the summary
// plus wall time per scenario, failing if any scenario fails. -stretch
// multiplies the scenario timelines, turning the corpus into a soak run.
//
// With -results DIR, every experiment additionally writes a
// BENCH_<experiment>.json artifact under DIR — the typed result rows the
// table rendered, plus scale and wall time — the machine-readable record
// CI uploads so runs can be compared without scraping stdout.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"aurora"
	"aurora/internal/experiments"
	"aurora/internal/scenario"
	"aurora/internal/vm"
)

type runner struct {
	name string
	fn   func(experiments.Scale) (renderer, error)
}

type renderer interface{ Render() string }

// wrap adapts the typed experiment functions.
func wrap[T renderer](fn func(experiments.Scale) (T, error)) func(experiments.Scale) (renderer, error) {
	return func(s experiments.Scale) (renderer, error) { return fn(s) }
}

func main() {
	quick := flag.Bool("quick", false, "CI-sized working sets")
	traceOut := flag.String("trace", "", "write a Chrome trace of a checkpoint+restore run to FILE")
	inspect := flag.Bool("inspect", false, "print the post-restore introspection page and audit report")
	scenarioPath := flag.String("scenario", "", "run a chaos scenario file or corpus directory as a benchmark")
	stretch := flag.Int64("stretch", 0, "multiply scenario timelines (soak runs; with -scenario)")
	results := flag.String("results", "", "write BENCH_<experiment>.json artifacts under DIR")
	flag.Parse()

	scale := experiments.Full
	if *quick {
		scale = experiments.Quick
	}

	if *scenarioPath != "" {
		if err := runScenarios(*scenarioPath, *stretch); err != nil {
			fmt.Fprintf(os.Stderr, "slsbench: scenario: %v\n", err)
			os.Exit(1)
		}
		if flag.NArg() == 0 && *traceOut == "" && !*inspect {
			return
		}
	}

	if *traceOut != "" || *inspect {
		if err := runTrace(*traceOut, scale, *inspect); err != nil {
			fmt.Fprintf(os.Stderr, "slsbench: trace: %v\n", err)
			os.Exit(1)
		}
		if flag.NArg() == 0 {
			return
		}
	}

	all := []runner{
		{"table1", wrap(experiments.Table1)},
		{"fig3a", wrap(experiments.Fig3a)},
		{"fig3b", wrap(experiments.Fig3b)},
		{"fig3c", wrap(experiments.Fig3c)},
		{"fig3d", wrap(experiments.Fig3d)},
		{"table4", func(experiments.Scale) (renderer, error) { return experiments.Table4() }},
		{"table5", wrap(experiments.Table5)},
		{"table6", wrap(experiments.Table6)},
		{"fig4", wrap(experiments.Fig4)},
		{"fig5", wrap(experiments.Fig5)},
		{"fig6", wrap(experiments.Fig6)},
		{"table7", wrap(experiments.Table7)},
		{"repl", wrap(experiments.Replication)},
		{"walwindow", wrap(experiments.WALWindow)},
		{"fleet", wrap(experiments.Fleet)},
		{"restore", wrap(experiments.RestoreBench)},
	}
	byName := map[string]runner{}
	for _, r := range all {
		byName[r.name] = r
	}

	args := flag.Args()
	if len(args) == 0 {
		fmt.Fprintln(os.Stderr, "usage: slsbench [-quick] [-trace FILE] all | EXPERIMENT...")
		os.Exit(2)
	}
	var todo []runner
	for _, a := range args {
		if a == "all" {
			todo = all
			break
		}
		r, ok := byName[a]
		if !ok {
			fmt.Fprintf(os.Stderr, "slsbench: unknown experiment %q\n", a)
			os.Exit(2)
		}
		todo = append(todo, r)
	}

	for _, r := range todo {
		start := time.Now()
		res, err := r.fn(scale)
		if err != nil {
			fmt.Fprintf(os.Stderr, "slsbench: %s: %v\n", r.name, err)
			os.Exit(1)
		}
		wall := time.Since(start)
		fmt.Println(res.Render())
		fmt.Printf("[%s completed in %v wall time]\n\n", r.name, wall.Round(time.Millisecond))
		if *results != "" {
			if err := writeBenchArtifact(*results, r.name, *quick, res, wall); err != nil {
				fmt.Fprintf(os.Stderr, "slsbench: %s: artifact: %v\n", r.name, err)
				os.Exit(1)
			}
		}
	}
}

// benchArtifact is the machine-readable record one experiment leaves
// behind: the typed result struct the renderer printed, plus enough
// context (scale, wall time) to compare artifacts across CI runs.
type benchArtifact struct {
	Experiment string `json:"experiment"`
	Scale      string `json:"scale"`
	WallMS     int64  `json:"wall_ms"`
	Result     any    `json:"result"`
}

// writeBenchArtifact dumps BENCH_<experiment>.json under dir. The result
// rows are virtual-clock measurements — deterministic across runs —
// while wall_ms is the host-time cost of regenerating them.
func writeBenchArtifact(dir, name string, quick bool, res any, wall time.Duration) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	scaleName := "full"
	if quick {
		scaleName = "quick"
	}
	blob, err := json.MarshalIndent(benchArtifact{
		Experiment: name,
		Scale:      scaleName,
		WallMS:     wall.Milliseconds(),
		Result:     res,
	}, "", "  ")
	if err != nil {
		return err
	}
	path := filepath.Join(dir, "BENCH_"+name+".json")
	return os.WriteFile(path, append(blob, '\n'), 0o644)
}

// runScenarios treats a chaos corpus as a benchmark suite: every scenario
// under path (a file or a directory) runs with its declared seed, printing
// the assertion summary plus the wall time the simulation took. Scenario
// time is virtual, so wall time here measures the engine itself — it is
// the number that regresses when checkpointing or the flusher gets slower.
func runScenarios(path string, stretch int64) error {
	info, err := os.Stat(path)
	if err != nil {
		return err
	}
	files := []string{path}
	if info.IsDir() {
		if files, err = scenario.Discover(path); err != nil {
			return err
		}
	}
	failed := 0
	for _, f := range files {
		sc, err := scenario.Load(f)
		if err != nil {
			return err
		}
		start := time.Now()
		res, err := scenario.Run(sc, scenario.RunOptions{Stretch: stretch})
		if err != nil {
			return fmt.Errorf("%s: %w", f, err)
		}
		fmt.Print(res.Summary())
		fmt.Printf("[%s completed in %v wall time]\n\n", sc.Name, time.Since(start).Round(time.Millisecond))
		if !res.Passed {
			failed++
		}
	}
	if failed > 0 {
		return fmt.Errorf("%d of %d scenarios failed", failed, len(files))
	}
	return nil
}

// runTrace drives a traced machine through four dirty-and-checkpoint
// rounds, a power loss, and a lazy restore that pages the working set back
// in — enough activity that the exported timeline has spans on every track
// (sls, flush, objstore, device) — then writes the Chrome trace to path and
// prints the rollup.
func runTrace(path string, scale experiments.Scale, inspect bool) error {
	pages := int64(256)
	if scale == experiments.Quick {
		pages = 64
	}
	m, err := aurora.NewMachine(aurora.Config{StorageBytes: 1 << 30, Trace: true})
	if err != nil {
		return err
	}
	p := m.Spawn("traced")
	if _, err := p.Mmap(pages*aurora.PageSize, aurora.ProtRead|aurora.ProtWrite, false); err != nil {
		return err
	}
	g, err := m.Attach("traced", p)
	if err != nil {
		return err
	}
	buf := make([]byte, aurora.PageSize)
	for round := 0; round < 4; round++ {
		buf[0] = byte(round + 1)
		for pg := int64(0); pg < pages; pg++ {
			if err := p.WriteMem(vm.UserBase+uint64(pg*aurora.PageSize), buf); err != nil {
				return err
			}
		}
		m.Clock.Advance(10 * time.Millisecond)
		if _, err := g.Checkpoint(aurora.CkptIncremental); err != nil {
			return err
		}
	}
	if err := g.Barrier(); err != nil {
		return err
	}
	m2, err := m.Crash() // the tracer rides across the reboot
	if err != nil {
		return err
	}
	g2, _, err := m2.RestoreLazily("traced")
	if err != nil {
		return err
	}
	p2 := g2.Procs()[0]
	for pg := int64(0); pg < pages; pg++ {
		if err := p2.ReadMem(vm.UserBase+uint64(pg*aurora.PageSize), buf); err != nil {
			return err
		}
	}

	if path != "" {
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := m2.Tracer.WriteChrome(f); err != nil {
			return err
		}
		fmt.Print(m2.Tracer.Rollup())
		fmt.Printf("[trace written to %s]\n\n", path)
	}
	if inspect {
		r := m2.Inspect(16)
		fmt.Print(r.Text())
		if !r.Audit.OK() {
			return fmt.Errorf("invariant audit failed: %s", r.Audit)
		}
	}
	return nil
}
