// Package aurora is the public API of the Aurora single-level-store
// reproduction: a simulated operating system that provides persistence as
// an OS service, after "The Aurora Single Level Store Operating System"
// (SOSP 2021).
//
// A Machine is one simulated computer: a virtual clock, four striped NVMe
// devices, the Aurora object store and file system, a POSIX kernel, and the
// SLS orchestrator. Applications are processes in that kernel; their memory
// lives behind a simulated MMU, which is what lets the store checkpoint
// them continuously and restore them after a crash:
//
//	m, _ := aurora.NewMachine(aurora.Defaults())
//	p := m.Spawn("myapp")
//	g, _ := m.Attach("myapp", p)          // sls attach
//	... the app runs; g checkpoints it every 10 ms ...
//	m2, _ := m.Crash()                    // power loss + reboot
//	g2, _, _ := m2.Restore("myapp")       // the app resumes
//
// The types behind processes, groups, journals, and stats are aliased from
// the implementation packages so the whole surface is reachable from this
// package.
package aurora

import (
	"errors"
	"fmt"
	"io"
	"time"

	"aurora/internal/audit"
	"aurora/internal/clock"
	"aurora/internal/device"
	"aurora/internal/faultdev"
	"aurora/internal/flight"
	"aurora/internal/kern"
	"aurora/internal/mem"
	"aurora/internal/net"
	"aurora/internal/objstore"
	"aurora/internal/sls"
	"aurora/internal/slsfs"
	"aurora/internal/telemetry"
	"aurora/internal/trace"
	"aurora/internal/vm"
)

// Re-exported types: the public names for the system's objects.
type (
	// Proc is a simulated process.
	Proc = kern.Proc
	// Thread is a simulated kernel thread.
	Thread = kern.Thread
	// CPUState is the per-thread register file.
	CPUState = kern.CPUState
	// Kernel is the simulated POSIX kernel.
	Kernel = kern.Kernel
	// Group is a consistency group — the unit of atomic persistence.
	Group = sls.Group
	// Orchestrator is the SLS core.
	Orchestrator = sls.Orchestrator
	// CheckpointKind selects how much a checkpoint captures.
	CheckpointKind = sls.CheckpointKind
	// CheckpointStats reports one checkpoint.
	CheckpointStats = sls.CheckpointStats
	// RestoreStats reports one restore.
	RestoreStats = sls.RestoreStats
	// Journal is an sls_journal write-ahead log.
	Journal = objstore.Journal
	// Tracer records virtual-time spans, counters, and histograms.
	Tracer = trace.Tracer
	// Replica is a warm standby of a group on another machine.
	Replica = sls.Replica
	// NetParams describe one direction of a simulated replication wire.
	NetParams = net.Params
	// NetPlan is a deterministic seeded wire fault scenario.
	NetPlan = net.Plan
	// NetFault arms one fault at a wire transmission index.
	NetFault = net.Fault
	// NetConn is a framed, ack-windowed replication connection.
	NetConn = net.Conn
	// Epoch numbers checkpoints in the store.
	Epoch = objstore.Epoch
	// OID names an object in the store.
	OID = objstore.OID
	// Signal is a POSIX signal number.
	Signal = kern.Signal
	// Prot is a memory protection mask.
	Prot = vm.Prot
	// FlightEvent is one entry in the crash flight recorder.
	FlightEvent = flight.Event
	// AuditReport is the outcome of one invariant-watchdog pass.
	AuditReport = audit.Report
	// AuditViolation is one broken invariant found by the watchdog.
	AuditViolation = audit.Violation
	// FaultPlan is a deterministic storage fault scenario (power cut, torn
	// write, in-flight loss, bit-rot) armed on a machine's fault device.
	FaultPlan = faultdev.Plan
	// FaultDev is the fault-injecting device interposed between the store
	// and the disks when a machine is built with Config.Fault.
	FaultDev = faultdev.Dev
)

// Re-exported constants.
const (
	ProtRead  = vm.ProtRead
	ProtWrite = vm.ProtWrite
	ProtExec  = vm.ProtExec

	CkptIncremental = sls.CkptIncremental
	CkptFull        = sls.CkptFull
	CkptMemOnly     = sls.CkptMemOnly
	CkptWAL         = sls.CkptWAL

	RestoreEager       = sls.RestoreFull
	RestoreLazy        = sls.RestoreLazy
	RestoreSpeculative = sls.RestoreSpeculative

	SIGCHLD    = kern.SIGCHLD
	SIGRESTORE = kern.SIGRESTORE
	SIGTERM    = kern.SIGTERM
	SIGUSR1    = kern.SIGUSR1

	ORead     = kern.ORead
	OWrite    = kern.OWrite
	ONonblock = kern.ONonblock
	OAppend   = kern.OAppend

	SockUnix = kern.KindSocketUnix
	SockUDP  = kern.KindSocketUDP
	SockTCP  = kern.KindSocketTCP

	PageSize = vm.PageSize
)

// Config sizes a Machine.
type Config struct {
	// Name identifies the machine in fleet telemetry: it seeds the
	// trace-context source id replication frames carry and labels the
	// machine's process in the merged fleet timeline. Optional — an
	// unnamed machine ships an empty trace-context.
	Name string
	// StorageBytes is the total capacity of the striped store devices.
	StorageBytes int64
	// MemoryBytes caps simulated physical memory; 0 is unlimited.
	MemoryBytes int64
	// Devices is the stripe width (the paper uses 4).
	Devices int
	// StripeUnit is the stripe chunk (the paper uses 64 KiB).
	StripeUnit int64
	// Costs overrides the calibrated cost model; nil uses DefaultCosts.
	Costs *clock.Costs
	// Trace enables the virtual-clock tracer, wired through the devices,
	// the store, and the SLS orchestrator. Off by default: the disabled
	// path costs one nil check per hook site.
	Trace bool
	// Telemetry enables the typed metrics registry (internal/telemetry):
	// stop time, durable/WAL windows, restore time-to-first-op, and
	// replication lag recorded at the source, sampled into time series,
	// and aggregated fleet-wide. Off by default, same cost contract as
	// Trace.
	Telemetry bool
	// Net, when non-nil, routes ReplicateTo and MigrateTo over a simulated
	// lossy network instead of the direct in-process copy. Each call builds
	// a fresh connection from this description.
	Net *NetConfig
	// Clock, when non-nil, runs the machine on an existing virtual timeline
	// instead of a fresh one. Fleet scenarios share one clock across every
	// machine so cross-machine event ordering ("power-cut machine 2 at
	// t=5s") is well-defined and replayable.
	Clock *clock.Virtual
	// Fault, when non-nil, interposes a deterministic fault-injection
	// device (internal/faultdev) between the store and the striped disks.
	// Arm it disarmed (CutAtSubmit: -1) and drive faults later through
	// PowerCut / BitRot, or arm a cut up front for crash experiments. The
	// wrapper rides across Crash so its crash log and media rot persist
	// like the black box of a real machine.
	Fault *FaultPlan
}

// NetConfig describes the simulated replication wire between machines:
// link characteristics, per-direction fault plans, and protocol tuning.
// The zero value is a clean default link.
type NetConfig struct {
	// Params sets latency/bandwidth/jitter; zero selects the paper's
	// testbed interconnect (15 µs one-way, ~1 GB/s).
	Params NetParams
	// Fwd and Rev are the fault plans for the data and ack directions.
	Fwd, Rev NetPlan
	// Conn tunes the transfer protocol (window, frame size, retries);
	// zero values select defaults.
	Conn net.Config
}

// Defaults returns the paper's testbed configuration scaled for a laptop.
func Defaults() Config {
	return Config{
		StorageBytes: 8 << 30,
		Devices:      4,
		StripeUnit:   64 << 10,
	}
}

// Machine is one simulated computer.
type Machine struct {
	Clock *clock.Virtual
	Costs *clock.Costs
	Disk  *device.Stripe
	Store *objstore.Store
	FS    *slsfs.FS
	K     *kern.Kernel
	SLS   *sls.Orchestrator
	// Tracer is non-nil when the machine was built with Config.Trace; use
	// Tracer.WriteChrome / Tracer.Rollup to export what it recorded.
	Tracer *trace.Tracer
	// Net is the replication wire description from Config.Net; nil selects
	// the direct in-process path.
	Net *NetConfig
	// Flight is the machine's crash flight recorder: a bounded ring of
	// structured events (checkpoints, flushes, device barriers, power
	// cuts, replication ships, restores) persisted into the store on
	// every checkpoint, so a rebooted machine can read the last moments
	// before a crash. Always on — recording is a few stores per event.
	Flight *flight.Recorder
	// Fault is the fault-injection device from Config.Fault; nil on
	// machines built without one. It persists across Crash — the crash
	// log and armed bit-rot are media properties, not volatile state.
	Fault *FaultDev
	// Metrics is the telemetry registry from Config.Telemetry; nil on
	// machines built without one. Like the tracer it rides across Crash,
	// so post-reboot restores land in the same series as the checkpoints
	// before the cut.
	Metrics *telemetry.Registry

	cfg     Config
	auditor *audit.Auditor
	wd      *audit.Watchdog
	slo     *telemetry.Watch
}

// NewMachine boots a machine with freshly formatted storage.
func NewMachine(cfg Config) (*Machine, error) {
	return build(cfg, nil, nil, true, nil, nil, nil)
}

// build assembles a machine; when disk is non-nil the store is recovered
// from it instead of formatted, and the timeline continues on clk. A
// non-nil tr carries an existing tracer across a crash so the recorded
// timeline spans reboots; otherwise cfg.Trace creates a fresh one. A
// non-nil fd carries an existing fault device across a crash (its crash
// log and rot are media state); otherwise cfg.Fault interposes a fresh one.
// A non-nil reg likewise carries the telemetry registry across a crash.
func build(cfg Config, disk *device.Stripe, clk *clock.Virtual, format bool, tr *trace.Tracer, fd *FaultDev, reg *telemetry.Registry) (*Machine, error) {
	if cfg.Devices == 0 {
		cfg.Devices = 4
	}
	if cfg.StripeUnit == 0 {
		cfg.StripeUnit = 64 << 10
	}
	if cfg.StorageBytes == 0 {
		cfg.StorageBytes = 8 << 30
	}
	costs := cfg.Costs
	if costs == nil {
		costs = clock.DefaultCosts()
	}
	if clk == nil {
		clk = cfg.Clock
	}
	if clk == nil {
		clk = clock.NewVirtual()
	}
	if disk == nil {
		disk = device.NewStripe(clk, costs, cfg.Devices, cfg.StripeUnit, cfg.StorageBytes/int64(cfg.Devices))
	}
	if tr == nil && cfg.Trace {
		tr = trace.New(clk)
	}
	if reg == nil && cfg.Telemetry {
		reg = telemetry.New(clk)
	}
	disk.SetTracer(tr)
	// The flight ring is volatile state: a boot (or reboot) starts a fresh
	// one. The pre-crash tail survives separately, as the object the store
	// persisted on the last completed checkpoint — see RecoveredFlight.
	fl := flight.NewRecorder(0)
	disk.SetFlight(fl)

	// The store reads and writes through the fault device when one is
	// configured, so armed cuts, tears, and rot land on real store IO.
	var bdev objstore.BlockDev = disk
	if fd == nil && cfg.Fault != nil {
		fd = faultdev.New(disk, clk, *cfg.Fault)
	}
	if fd != nil {
		fd.SetTracer(tr)
		fd.SetFlight(fl)
		bdev = fd
	}

	var (
		store *objstore.Store
		err   error
	)
	if format {
		store, err = objstore.Format(bdev, clk, costs)
	} else {
		store, err = objstore.Recover(bdev, clk, costs)
	}
	if err != nil {
		return nil, err
	}
	var fs *slsfs.FS
	if format {
		fs, err = slsfs.Format(store, clk, costs)
	} else {
		fs, err = slsfs.Recover(store, clk, costs)
	}
	if err != nil {
		return nil, err
	}
	store.SetTracer(tr)
	store.SetFlight(fl)
	vmsys := vm.NewSystem(mem.New(cfg.MemoryBytes), clk, costs)
	k := kern.New(clk, costs, vmsys, fs)
	m := &Machine{
		Clock:   clk,
		Costs:   costs,
		Disk:    disk,
		Store:   store,
		FS:      fs,
		K:       k,
		SLS:     sls.New(k, store),
		Tracer:  tr,
		Flight:  fl,
		Fault:   fd,
		Metrics: reg,
		cfg:     cfg,
	}
	m.SLS.Tracer = tr
	m.SLS.Metrics = reg
	m.Net = cfg.Net
	return m, nil
}

// RecoveredFlight returns the pre-crash flight timeline: the event ring the
// previous incarnation of this machine persisted on its last completed
// checkpoint. ok is false on a freshly formatted machine that has never
// checkpointed. The returned events are the forensic record of what the
// system was doing in the moments leading up to its final commit.
func (m *Machine) RecoveredFlight() (evs []FlightEvent, seq uint64, ok bool, err error) {
	return m.Store.RecoveredFlight()
}

// Audit runs the invariant watchdog once over the live machine — VM shadow
// chains and page tables, kernel descriptor tables, the store's allocation
// maps, group and replication epochs — and returns the report. Violations
// are also recorded as flight events and trace counters. The auditor keeps
// memory between calls (epoch monotonicity is a between-passes invariant).
func (m *Machine) Audit() AuditReport {
	if m.auditor == nil {
		m.auditor = &audit.Auditor{
			Store: m.Store, K: m.K, O: m.SLS,
			Fl: m.Flight, Tr: m.Tracer, Clk: m.Clock,
			Reg: m.Metrics, SLO: m.slo,
		}
	}
	return m.auditor.Run()
}

// StartWatchdog arms periodic auditing: RunPeriodic calls the watchdog
// between workload iterations and fails fast on any violation. interval <= 0
// selects the default cadence.
func (m *Machine) StartWatchdog(interval time.Duration) {
	m.Audit() // force the auditor into existence and take a baseline
	m.wd = &audit.Watchdog{A: m.auditor, Interval: interval}
}

// NewConn builds a replication connection over this machine's clock from a
// wire description (nil selects Machine.Net, and a nil result means the
// direct path). Faults injected by the plans land on the machine's tracer
// when tracing is enabled.
func (m *Machine) NewConn(nc *NetConfig) *NetConn {
	if nc == nil {
		nc = m.Net
	}
	if nc == nil {
		return nil
	}
	params := nc.Params
	if params == (NetParams{}) {
		params = net.DefaultParams()
	}
	pipe := net.NewPipe(m.Clock, params, nc.Fwd, nc.Rev)
	conn := net.NewConn(pipe, m.Clock, nc.Conn, m.Tracer)
	conn.SetFlight(m.Flight)
	if m.cfg.Name != "" {
		conn.SetSource(telemetry.MachineID(m.cfg.Name))
	}
	return conn
}

// Name returns the machine's fleet identity from Config.Name.
func (m *Machine) Name() string { return m.cfg.Name }

// AttachSLO points the machine's auditor at an SLO watch: the sls.slo
// audit family cross-checks the watch's breach log against the registry's
// slo.breaches counter on every audit pass.
func (m *Machine) AttachSLO(w *telemetry.Watch) {
	m.slo = w
	if m.auditor != nil {
		m.auditor.SLO = w
		m.auditor.Reg = m.Metrics
	}
}

// Crash simulates power loss and reboot: all volatile state (kernel,
// processes, memory) is gone; the returned machine recovered its store
// from the last complete checkpoint on the same disks. The virtual
// timeline continues across the crash. If the machine was tracing, the
// rebooted machine records into the same tracer — restore spans land on
// the same timeline as the checkpoints that made them possible.
func (m *Machine) Crash() (*Machine, error) {
	if m.Fault != nil && m.Fault.Crashed() {
		m.Fault.Reopen()
	}
	cfg := m.cfg
	cfg.Costs = m.Costs
	cfg.Net = m.Net
	return build(cfg, m.Disk, m.Clock, false, m.Tracer, m.Fault, m.Metrics)
}

// PowerCut forces a power failure through the fault device: the machine's
// next storage write is the cut (optionally landing only a torn sector
// prefix, optionally losing the in-flight queue window), all volatile
// state dies, and the returned machine is the post-reboot recovery from
// the last complete checkpoint. seed feeds the torn-prefix PRNG, so the
// same seed replays the identical failure. The cut and tear land in the
// fault device's crash log (and any committed pre-crash flight ring
// survives in the store), so the rebooted machine can explain which write
// killed it. Requires Config.Fault.
func (m *Machine) PowerCut(seed int64, torn, dropInFlight bool) (*Machine, error) {
	if m.Fault == nil {
		return nil, fmt.Errorf("aurora: PowerCut needs a machine built with Config.Fault")
	}
	prev := m.Fault.Plan()
	m.Fault.Arm(FaultPlan{
		Seed:         seed,
		CutAtSubmit:  m.Fault.Submits(),
		Torn:         torn,
		DropInFlight: dropInFlight,
		RotOffsets:   prev.RotOffsets, // media decay outlives the controller
	})
	// A store checkpoint always writes (flight ring, then superblock), so
	// it reliably drives the armed cut.
	if _, err := m.Store.Checkpoint(); err == nil {
		return nil, fmt.Errorf("aurora: power cut armed but checkpoint committed without a write")
	} else if !errors.Is(err, faultdev.ErrPowerCut) {
		return nil, fmt.Errorf("aurora: power cut: %w", err)
	}
	return m.Crash()
}

// BitRot arms persistent read bit-rot at the given device byte offsets:
// every read covering an offset comes back with a flipped bit, modeling
// media decay. The rot survives Crash and is what the fsck scrub exists to
// catch. Requires Config.Fault.
func (m *Machine) BitRot(offsets ...int64) error {
	if m.Fault == nil {
		return fmt.Errorf("aurora: BitRot needs a machine built with Config.Fault")
	}
	plan := m.Fault.Plan()
	plan.RotOffsets = append(plan.RotOffsets, offsets...)
	m.Fault.Arm(plan)
	return nil
}

// SaveImage writes the machine's disk contents to w; BootImage brings the
// machine back from it — the persistence boundary the sls CLI uses between
// invocations.
func (m *Machine) SaveImage(w io.Writer) error { return m.Disk.Save(w) }

// BootImage loads a saved disk image and boots a machine from it,
// recovering the store from the last complete checkpoint.
func BootImage(r io.Reader, cfg Config) (*Machine, error) {
	costs := cfg.Costs
	if costs == nil {
		costs = clock.DefaultCosts()
	}
	clk := clock.NewVirtual()
	disk, err := device.LoadStripe(clk, costs, r)
	if err != nil {
		return nil, err
	}
	cfg.Costs = costs
	return build(cfg, disk, clk, false, nil, nil, nil)
}

// PersistedGroups lists group names recorded on disk (sls ps after boot).
func (m *Machine) PersistedGroups() ([]string, error) {
	return sls.ManifestGroups(m.Store)
}

// Spawn creates a new process.
func (m *Machine) Spawn(name string) *Proc { return m.K.NewProc(name) }

// Attach creates (or reuses) a named consistency group and attaches the
// process tree rooted at p — the sls attach command.
func (m *Machine) Attach(group string, p *Proc) (*Group, error) {
	g, ok := m.SLS.GroupByName(group)
	if !ok {
		g = m.SLS.CreateGroup(group)
	}
	if err := g.Attach(p); err != nil {
		return nil, err
	}
	return g, nil
}

// Group finds a named consistency group.
func (m *Machine) Group(name string) (*Group, bool) { return m.SLS.GroupByName(name) }

// Checkpoint takes an incremental checkpoint of the named group —
// the sls checkpoint command.
func (m *Machine) Checkpoint(group string) (CheckpointStats, error) {
	g, ok := m.SLS.GroupByName(group)
	if !ok {
		return CheckpointStats{}, fmt.Errorf("aurora: no group %q", group)
	}
	return g.Checkpoint(CkptIncremental)
}

// Restore rebuilds the named group from the store's last complete
// checkpoint — the sls restore command after a crash. The rebuilt state
// passes through the invariant watchdog before being handed back: a restore
// that resurrects a broken object graph is an error, not a success.
func (m *Machine) Restore(group string) (*Group, RestoreStats, error) {
	return m.restoreChecked(group, RestoreEager)
}

// RestoreLazily is Restore with on-demand page loading.
func (m *Machine) RestoreLazily(group string) (*Group, RestoreStats, error) {
	return m.restoreChecked(group, RestoreLazy)
}

// RestoreSpeculatively restores the named group with validated
// speculation: metadata rebuilds first (the stats' TimeToFirstOp is the
// span until the group could execute), then the validator sweep confirms
// the whole image, rolling back to a serial restore on any mismatch. The
// returned group is the live one — the speculative group when validation
// succeeded, its serial replacement after a rollback (Rollbacks=1 in the
// stats). The invariant auditor runs after the state machine settles,
// exactly like every other restore path.
func (m *Machine) RestoreSpeculatively(group string) (*Group, RestoreStats, error) {
	g, st, err := m.SLS.RestoreGroup(group, m.Store, RestoreSpeculative, true)
	if err != nil {
		return g, st, err
	}
	g2, fin, err := m.SLS.FinishSpeculation(g)
	if err != nil {
		return g2, st, err
	}
	st.PagesSpeculated = fin.PagesSpeculated
	st.PagesValidated = fin.PagesValidated
	st.Rollbacks = fin.Rollbacks
	st.Time += fin.Time
	if rep := m.Audit(); !rep.OK() {
		return g2, st, fmt.Errorf("aurora: post-restore self-check failed: %s", rep)
	}
	return g2, st, nil
}

func (m *Machine) restoreChecked(group string, mode sls.RestoreMode) (*Group, RestoreStats, error) {
	g, st, err := m.SLS.RestoreGroup(group, m.Store, mode, true)
	if err != nil {
		return g, st, err
	}
	if rep := m.Audit(); !rep.OK() {
		return g, st, fmt.Errorf("aurora: post-restore self-check failed: %s", rep)
	}
	return g, st, nil
}

// RestoreAt rebuilds the named group as of a retained checkpoint epoch —
// time-travel restore.
func (m *Machine) RestoreAt(group string, epoch Epoch) (*Group, RestoreStats, error) {
	view, err := m.Store.RestoreView(epoch)
	if err != nil {
		return nil, RestoreStats{}, err
	}
	return m.SLS.RestoreGroup(group, view, RestoreEager, false)
}

// Suspend checkpoints the named group and terminates its processes; the
// application stays on disk, restorable with Restore — sls suspend.
func (m *Machine) Suspend(group string) error {
	g, ok := m.SLS.GroupByName(group)
	if !ok {
		return fmt.Errorf("aurora: no group %q", group)
	}
	return g.Suspend()
}

// MigrateTo live-migrates the named group to another machine with
// iterative pre-copy (§10): a full round, `rounds` delta rounds while the
// application runs (work is called between them), and a final short
// stop-and-copy. The group resumes on dst. With Config.Net set, every
// round ships over the simulated wire as a resumable transfer.
func (m *Machine) MigrateTo(dst *Machine, group string, rounds int, work func() error) (*Group, sls.MigrateStats, error) {
	g, ok := m.SLS.GroupByName(group)
	if !ok {
		return nil, sls.MigrateStats{}, fmt.Errorf("aurora: no group %q", group)
	}
	return g.MigrateVia(dst.SLS, rounds, work, m.NewConn(nil))
}

// ReplicateTo seeds a warm standby of the named group on dst and returns
// the replication handle (Sync ships deltas; Failover takes over). With
// Config.Net set, the seed and every sync run over the simulated wire; a
// sync that exhausts its retries stays pending on the handle and Resume
// re-ships only the unacked tail.
func (m *Machine) ReplicateTo(dst *Machine, group string) (*sls.Replica, error) {
	g, ok := m.SLS.GroupByName(group)
	if !ok {
		return nil, fmt.Errorf("aurora: no group %q", group)
	}
	return g.ReplicateToVia(dst.SLS, m.NewConn(nil))
}

// History lists restorable checkpoint epochs.
func (m *Machine) History() []Epoch { return m.Store.RetainedCheckpoints() }

// Now returns the machine's virtual time.
func (m *Machine) Now() time.Duration { return m.Clock.Now() }

// RunPeriodic drives the named group's periodic checkpointing for the given
// virtual duration while fn runs the application workload. fn is called
// repeatedly until the duration elapses; checkpoints trigger between calls,
// exactly as the orchestrator's timer would.
func (m *Machine) RunPeriodic(group string, dur time.Duration, fn func() error) error {
	g, ok := m.SLS.GroupByName(group)
	if !ok {
		return fmt.Errorf("aurora: no group %q", group)
	}
	start := m.Clock.Now()
	for m.Clock.Now()-start < dur {
		if err := fn(); err != nil {
			return err
		}
		if _, _, err := g.MaybePeriodic(); err != nil {
			return err
		}
		if m.wd != nil {
			if rep, ran := m.wd.MaybeRun(m.Clock.Now()); ran && !rep.OK() {
				return fmt.Errorf("aurora: watchdog: %s", rep)
			}
		}
	}
	return nil
}
