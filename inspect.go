package aurora

import (
	"fmt"
	"sort"
	"strings"

	"aurora/internal/kern"
)

// Inspection (`sls inspect`): a /proc-like read-only view of the machine —
// store occupancy, per-group process/VM/descriptor tables, checkpoint and
// replication counters, the flight-recorder tail, and an invariant-audit
// report — in one structure with both a stable text rendering and a stable
// JSON encoding. Everything here is a snapshot; nothing mutates the system
// except the audit pass (which only updates the watchdog's epoch memory).

// InspectReport is the full introspection snapshot.
type InspectReport struct {
	TimeNS int64         `json:"time_ns"` // virtual time of the snapshot
	Store  StoreInspect  `json:"store"`
	Groups []GroupInfo   `json:"groups"`
	Flight []FlightEntry `json:"flight"` // live ring tail, oldest first
	// Recovered is the pre-crash timeline persisted by the previous
	// incarnation of this machine, when one exists.
	Recovered []FlightEntry  `json:"recovered,omitempty"`
	Counters  []CounterEntry `json:"counters,omitempty"` // trace counters, sorted
	Audit     AuditReport    `json:"audit"`
}

// StoreInspect summarizes the object store.
type StoreInspect struct {
	Epoch       uint64   `json:"epoch"`
	Checkpoints int64    `json:"checkpoints"`
	ObjectsLive int64    `json:"objects_live"`
	DataBytes   int64    `json:"data_bytes"`
	MetaBytes   int64    `json:"meta_bytes"`
	Retained    []uint64 `json:"retained"` // restorable epochs
}

// GroupInfo is one consistency group's table.
type GroupInfo struct {
	Name        string     `json:"name"`
	ID          uint64     `json:"id"`
	Epoch       uint64     `json:"epoch"`
	Checkpoints int64      `json:"checkpoints"`
	Procs       []ProcInfo `json:"procs"`
}

// ProcInfo is one process row: identity plus VM and descriptor counts.
type ProcInfo struct {
	PID           int64    `json:"pid"` // local (restore-stable) PID
	Name          string   `json:"name"`
	Threads       int      `json:"threads"`
	Exited        bool     `json:"exited"`
	MapEntries    int      `json:"map_entries"`
	ResidentBytes int64    `json:"resident_bytes"`
	FDs           []FDInfo `json:"fds"`
}

// FDInfo is one descriptor-table row.
type FDInfo struct {
	FD   int    `json:"fd"`
	Kind string `json:"kind"` // vnode, pipe-r, pipe-w, socket, shm, kqueue, pty-m, pty-s, device
	Refs int32  `json:"refs"`
}

// FlightEntry is one flight-recorder event with the kind spelled out, so
// the JSON stays readable and stable if kind numbering ever grows.
type FlightEntry struct {
	AtNS   int64  `json:"at_ns"`
	Kind   string `json:"kind"`
	A      int64  `json:"a"`
	B      int64  `json:"b"`
	C      int64  `json:"c"`
	Detail string `json:"detail,omitempty"`
}

// CounterEntry is one trace counter total.
type CounterEntry struct {
	Name  string `json:"name"`
	Value int64  `json:"value"`
}

// Inspect snapshots the machine. tailN bounds the flight sections (0 means
// 16). The snapshot includes an audit pass, so inspecting a sick machine
// shows its violations inline.
func (m *Machine) Inspect(tailN int) InspectReport {
	if tailN <= 0 {
		tailN = 16
	}
	var r InspectReport
	r.TimeNS = int64(m.Clock.Now())

	st := m.Store.Stats()
	r.Store = StoreInspect{
		Epoch:       uint64(m.Store.Epoch()),
		Checkpoints: st.Checkpoints,
		ObjectsLive: st.ObjectsLive,
		DataBytes:   st.DataBytes,
		MetaBytes:   st.MetaBytes,
	}
	for _, ep := range m.Store.RetainedCheckpoints() {
		r.Store.Retained = append(r.Store.Retained, uint64(ep))
	}

	groups := m.SLS.Groups()
	sort.Slice(groups, func(i, j int) bool { return groups[i].Name < groups[j].Name })
	for _, g := range groups {
		gi := GroupInfo{
			Name:        g.Name,
			ID:          g.ID,
			Epoch:       uint64(g.Epoch()),
			Checkpoints: g.Checkpoints(),
		}
		for _, p := range g.Procs() {
			pi := ProcInfo{
				PID:     int64(p.LocalPID),
				Name:    p.Name,
				Threads: len(p.Threads),
				Exited:  p.Exited(),
			}
			if !p.Exited() && p.Mem != nil {
				pi.MapEntries = len(p.Mem.Entries())
				pi.ResidentBytes = p.Mem.ResidentBytes()
			}
			if !p.Exited() {
				p.FDs.Each(func(fd int, f *kern.File) {
					pi.FDs = append(pi.FDs, FDInfo{FD: fd, Kind: fdKind(f), Refs: f.Refs()})
				})
				sort.Slice(pi.FDs, func(i, j int) bool { return pi.FDs[i].FD < pi.FDs[j].FD })
			}
			gi.Procs = append(gi.Procs, pi)
		}
		r.Groups = append(r.Groups, gi)
	}

	for _, ev := range m.Flight.Tail(tailN) {
		r.Flight = append(r.Flight, flightEntry(ev))
	}
	if evs, _, ok, err := m.RecoveredFlight(); err == nil && ok {
		if len(evs) > tailN {
			evs = evs[len(evs)-tailN:]
		}
		for _, ev := range evs {
			r.Recovered = append(r.Recovered, flightEntry(ev))
		}
	}
	if m.Tracer != nil {
		for _, c := range m.Tracer.Counters() {
			r.Counters = append(r.Counters, CounterEntry{Name: c.Name, Value: c.Total})
		}
	}

	r.Audit = m.Audit()
	return r
}

func flightEntry(ev FlightEvent) FlightEntry {
	return FlightEntry{AtNS: ev.At, Kind: ev.Kind.String(), A: ev.A, B: ev.B, C: ev.C, Detail: ev.Detail}
}

// fdKind names the implementation behind an open-file description.
func fdKind(f *kern.File) string {
	if _, ok := kern.VnodeOf(f); ok {
		return "vnode"
	}
	if _, write, ok := kern.PipeInfo(f); ok {
		if write {
			return "pipe-w"
		}
		return "pipe-r"
	}
	if _, ok := kern.SocketOf(f); ok {
		return "socket"
	}
	if _, ok := kern.ShmOf(f); ok {
		return "shm"
	}
	if _, ok := kern.KqueueOf(f); ok {
		return "kqueue"
	}
	if _, master, ok := kern.PTYInfo(f); ok {
		if master {
			return "pty-m"
		}
		return "pty-s"
	}
	if _, ok := kern.DeviceNameOf(f); ok {
		return "device"
	}
	return "other"
}

// Text renders the report as a stable human-readable page, one section per
// subsystem, in the same order as the JSON fields.
func (r InspectReport) Text() string {
	var b strings.Builder
	fmt.Fprintf(&b, "machine @ %dns\n", r.TimeNS)
	fmt.Fprintf(&b, "\nstore:\n")
	fmt.Fprintf(&b, "  epoch=%d checkpoints=%d objects=%d data=%dB meta=%dB\n",
		r.Store.Epoch, r.Store.Checkpoints, r.Store.ObjectsLive, r.Store.DataBytes, r.Store.MetaBytes)
	fmt.Fprintf(&b, "  retained epochs: %v\n", r.Store.Retained)

	fmt.Fprintf(&b, "\ngroups (%d):\n", len(r.Groups))
	for _, g := range r.Groups {
		fmt.Fprintf(&b, "  %s (id=%d) epoch=%d checkpoints=%d\n", g.Name, g.ID, g.Epoch, g.Checkpoints)
		for _, p := range g.Procs {
			status := ""
			if p.Exited {
				status = " [exited]"
			}
			fmt.Fprintf(&b, "    pid %-5d %-16s threads=%d entries=%d resident=%dB%s\n",
				p.PID, p.Name, p.Threads, p.MapEntries, p.ResidentBytes, status)
			for _, fd := range p.FDs {
				fmt.Fprintf(&b, "      fd %-3d %-8s refs=%d\n", fd.FD, fd.Kind, fd.Refs)
			}
		}
	}

	fmt.Fprintf(&b, "\nflight tail (%d):\n", len(r.Flight))
	writeFlight(&b, r.Flight)
	if len(r.Recovered) > 0 {
		fmt.Fprintf(&b, "\npre-crash flight (recovered, %d):\n", len(r.Recovered))
		writeFlight(&b, r.Recovered)
	}
	if len(r.Counters) > 0 {
		fmt.Fprintf(&b, "\ncounters:\n")
		for _, c := range r.Counters {
			fmt.Fprintf(&b, "  %-28s %d\n", c.Name, c.Value)
		}
	}
	fmt.Fprintf(&b, "\n%s\n", r.Audit)
	return b.String()
}

func writeFlight(b *strings.Builder, evs []FlightEntry) {
	if len(evs) == 0 {
		fmt.Fprintf(b, "  (none)\n")
		return
	}
	for _, ev := range evs {
		fmt.Fprintf(b, "  %12dns %-15s a=%d b=%d c=%d", ev.AtNS, ev.Kind, ev.A, ev.B, ev.C)
		if ev.Detail != "" {
			fmt.Fprintf(b, " [%s]", ev.Detail)
		}
		b.WriteByte('\n')
	}
}
