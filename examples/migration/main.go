// migration: move a running application between machines with sls send /
// sls recv (§3) — the building block for transparent migration and high
// availability.
//
// A session server (think: a game server or shell session, state purely in
// memory) runs on machine A. Its checkpoint streams to machine B, where it
// resumes with every session intact — including an open file and a pipe
// with buffered data, because the POSIX object model carries kernel state,
// not just memory.
package main

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"log"

	"aurora"
)

func main() {
	machineA, err := aurora.NewMachine(aurora.Defaults())
	if err != nil {
		log.Fatal(err)
	}

	// The application: a "session server" with three kinds of state.
	p := machineA.Spawn("sessions")
	// 1. Memory: the session table.
	va, err := p.Mmap(1<<20, aurora.ProtRead|aurora.ProtWrite, false)
	if err != nil {
		log.Fatal(err)
	}
	for i := 0; i < 16; i++ {
		var rec [16]byte
		binary.LittleEndian.PutUint64(rec[0:], uint64(1000+i)) // session id
		binary.LittleEndian.PutUint64(rec[8:], uint64(i*7))    // score
		p.WriteMem(va+uint64(i*16), rec[:])
	}
	// 2. An open file (the audit log), including its offset.
	fd, err := p.Open("/var/log/sessions", aurora.ORead|aurora.OWrite, true)
	if err != nil {
		log.Fatal(err)
	}
	p.Write(fd, []byte("session server started\n"))
	// 3. A pipe with bytes still in flight.
	rfd, wfd, err := p.Pipe()
	if err != nil {
		log.Fatal(err)
	}
	p.Write(wfd, []byte("queued command"))

	g, err := machineA.Attach("sessions", p)
	if err != nil {
		log.Fatal(err)
	}
	if _, err := g.Checkpoint(aurora.CkptIncremental); err != nil {
		log.Fatal(err)
	}
	if err := g.Barrier(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("machine A: application checkpointed")

	// Stream the checkpoint — in production this pipes over TCP; here a
	// buffer stands in for the wire.
	var wire bytes.Buffer
	if err := g.Send(&wire); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("machine A: sent %d bytes\n", wire.Len())

	// Machine B: an entirely separate computer.
	machineB, err := aurora.NewMachine(aurora.Defaults())
	if err != nil {
		log.Fatal(err)
	}
	name, err := machineB.SLS.Recv(&wire)
	if err != nil {
		log.Fatal(err)
	}
	gB, rst, err := machineB.Restore(name)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("machine B: received and restored %q (%d proc) in %v\n", name, rst.Procs, rst.Time)

	// Everything travelled.
	pb := gB.Procs()[0]
	var rec [16]byte
	pb.ReadMem(va+5*16, rec[:])
	fmt.Printf("  session %d score %d (memory intact)\n",
		binary.LittleEndian.Uint64(rec[0:]), binary.LittleEndian.Uint64(rec[8:]))
	pb.Lseek(fd, 0)
	logLine := make([]byte, 23)
	pb.Read(fd, logLine)
	fmt.Printf("  audit log: %q (file + offset intact)\n", logLine)
	buf := make([]byte, 32)
	n, _ := pb.Read(rfd, buf)
	fmt.Printf("  pipe: %q (in-flight bytes intact)\n", buf[:n])
	// And the app keeps running on B.
	pb.WriteMem(va, []byte{0xFF})
	fmt.Println("machine B: application running")
}
