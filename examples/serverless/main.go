// serverless: warm starts for function-as-a-service (§1).
//
// Serverless platforms pay a cold-start tax: every invocation of an idle
// function re-runs its costly initialization (loading a runtime, parsing
// config, building caches). Aurora's answer is to capture the function
// *after* initialization and restore it at invocation time — and because
// lazy restores defer page loading, an invocation starts in microseconds
// and pages in only what it touches.
package main

import (
	"encoding/binary"
	"fmt"
	"log"
	"time"

	"aurora"
)

// initFunction simulates an expensive initialization: building a large
// in-memory model/cache the handler consults.
func initFunction(m *aurora.Machine, p *aurora.Proc) (uint64, error) {
	const tableBytes = 32 << 20
	va, err := p.Mmap(tableBytes, aurora.ProtRead|aurora.ProtWrite, false)
	if err != nil {
		return 0, err
	}
	// "Parse and index the model": fill the table.
	var rec [8]byte
	for off := int64(0); off < tableBytes; off += aurora.PageSize {
		binary.LittleEndian.PutUint64(rec[:], uint64(off/aurora.PageSize)*2654435761)
		if err := p.WriteMem(va+uint64(off), rec[:]); err != nil {
			return 0, err
		}
	}
	m.Clock.Advance(800 * time.Millisecond) // the runtime's startup cost
	return va, nil
}

// invoke runs the "handler": it reads a few table entries.
func invoke(p *aurora.Proc, va uint64, req int) (uint64, error) {
	var b [8]byte
	var sum uint64
	for i := 0; i < 4; i++ {
		slot := uint64((req*31 + i*7919) % (32 << 8))
		if err := p.ReadMem(va+slot*aurora.PageSize, b[:]); err != nil {
			return 0, err
		}
		sum += binary.LittleEndian.Uint64(b[:])
	}
	return sum, nil
}

func main() {
	m, err := aurora.NewMachine(aurora.Defaults())
	if err != nil {
		log.Fatal(err)
	}

	// Cold start: initialize the function once and snapshot it.
	p := m.Spawn("fn")
	coldStart := m.Now()
	va, err := initFunction(m, p)
	if err != nil {
		log.Fatal(err)
	}
	coldTime := m.Now() - coldStart
	g, err := m.Attach("fn", p)
	if err != nil {
		log.Fatal(err)
	}
	if _, err := g.Checkpoint(aurora.CkptIncremental); err != nil {
		log.Fatal(err)
	}
	if err := g.Barrier(); err != nil {
		log.Fatal(err)
	}
	// The initialized function is now an image; the instance can go away.
	if err := g.Suspend(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("cold start (initialization): %v; snapshot taken, instance torn down\n", coldTime)

	// Warm starts: each invocation restores the initialized image lazily.
	for req := 1; req <= 3; req++ {
		start := m.Now()
		gi, rst, err := m.SLS.RestoreGroup("fn", m.Store, aurora.RestoreLazy, true)
		if err != nil {
			log.Fatal(err)
		}
		inst := gi.Procs()[0]
		sum, err := invoke(inst, va, req)
		if err != nil {
			log.Fatal(err)
		}
		total := m.Now() - start
		fmt.Printf("invocation %d: restore %v (%d pages eager), handler ran, total %v (sum=%x)\n",
			req, rst.Time, rst.PagesEager, total, sum)
		// The instance is discarded after the invocation (stateless FaaS);
		// the image remains for the next one.
		for _, ip := range gi.Procs() {
			ip.Exit(0)
		}
		m.SLS.Forget(gi)
	}
	fmt.Println("warm starts skipped initialization entirely — microseconds instead of hundreds of milliseconds")
}
