// kvstore: the paper's RocksDB result in miniature (§9.6).
//
// A key-value store built *for* a single level store needs no storage
// engine: the memtable is the database (Aurora persists it), and a
// write-ahead journal (sls_journal) covers the window since the last
// checkpoint. The paper replaced 81k lines of RocksDB persistence code with
// 109 lines of this pattern — and gained 75% throughput.
//
// This example builds the store, commits writes through the journal,
// crashes the machine, and recovers: checkpointed state comes back through
// the SLS, and the journal replays the tail.
package main

import (
	"encoding/binary"
	"fmt"
	"log"

	"aurora"
)

// kv is the whole "database engine". State lives in simulated process
// memory (an append-only record arena); the Go map is a rebuildable index.
type kv struct {
	p     *aurora.Proc
	g     *aurora.Group
	j     *aurora.Journal
	arena uint64
	tail  int64
	index map[string]int64 // key -> arena offset of value record
}

const arenaSize = 4 << 20

func open(m *aurora.Machine, name string) (*kv, error) {
	p := m.Spawn(name)
	arena, err := p.Mmap(arenaSize, aurora.ProtRead|aurora.ProtWrite, false)
	if err != nil {
		return nil, err
	}
	g, err := m.Attach(name, p)
	if err != nil {
		return nil, err
	}
	j, err := g.Journal("wal", 1<<20)
	if err != nil {
		return nil, err
	}
	return &kv{p: p, g: g, j: j, arena: arena, index: map[string]int64{}}, nil
}

// put appends the record to the arena (memory) and the journal (synchronous
// durability), exactly the paper's pattern: disable nothing, serialize
// nothing, flush nothing — the journal IS the WAL and Aurora IS the engine.
func (s *kv) put(key, val string) error {
	rec := encode(key, val)
	if err := s.p.WriteMem(s.arena+8+uint64(s.tail), rec); err != nil {
		return err
	}
	s.index[key] = s.tail
	s.tail += int64(len(rec))
	var t [8]byte
	binary.LittleEndian.PutUint64(t[:], uint64(s.tail))
	if err := s.p.WriteMem(s.arena, t[:]); err != nil {
		return err
	}
	// Synchronous commit: ~28 us for a small record (Table 5).
	_, err := s.j.Append(rec)
	return err
}

func (s *kv) get(key string) (string, bool) {
	off, ok := s.index[key]
	if !ok {
		return "", false
	}
	_, v := decodeAt(s.p, s.arena+8+uint64(off))
	return v, true
}

// checkpointAndTrim is the WAL-full path: checkpoint (the memtable is now
// durable), wait for the barrier, truncate the journal.
func (s *kv) checkpointAndTrim() error {
	if _, err := s.g.Checkpoint(aurora.CkptIncremental); err != nil {
		return err
	}
	if err := s.g.Barrier(); err != nil {
		return err
	}
	s.j.Truncate()
	return nil
}

// recoverKV rebuilds the store after a crash: the index rescans restored
// memory, then journal entries past the checkpoint replay idempotently.
// It returns the store and the number of journal entries replayed.
func recoverKV(g *aurora.Group, arena uint64) (*kv, int, error) {
	p := g.Procs()[0]
	s := &kv{p: p, g: g, arena: arena, index: map[string]int64{}}
	var t [8]byte
	if err := p.ReadMem(arena, t[:]); err != nil {
		return nil, 0, err
	}
	end := int64(binary.LittleEndian.Uint64(t[:]))
	for off := int64(0); off < end; {
		n, _ := decodeAt(p, arena+8+uint64(off))
		k, _ := decodeKey(p, arena+8+uint64(off))
		s.index[k] = off
		off += n
	}
	s.tail = end
	j, err := g.OpenJournal("wal")
	if err != nil {
		return nil, 0, err
	}
	s.j = j
	entries, err := j.Entries()
	if err != nil {
		return nil, 0, err
	}
	for _, e := range entries {
		k, v := decodeRec(e.Payload)
		// Idempotent replay: re-insert into memory without re-journaling.
		rec := encode(k, v)
		if err := p.WriteMem(arena+8+uint64(s.tail), rec); err != nil {
			return nil, 0, err
		}
		s.index[k] = s.tail
		s.tail += int64(len(rec))
	}
	return s, len(entries), nil
}

func encode(key, val string) []byte {
	rec := make([]byte, 8+len(key)+len(val))
	binary.LittleEndian.PutUint32(rec[0:], uint32(len(key)))
	binary.LittleEndian.PutUint32(rec[4:], uint32(len(val)))
	copy(rec[8:], key)
	copy(rec[8+len(key):], val)
	return rec
}

func decodeRec(rec []byte) (string, string) {
	kl := binary.LittleEndian.Uint32(rec[0:])
	vl := binary.LittleEndian.Uint32(rec[4:])
	return string(rec[8 : 8+kl]), string(rec[8+kl : 8+kl+vl])
}

func decodeAt(p *aurora.Proc, addr uint64) (int64, string) {
	var hdr [8]byte
	p.ReadMem(addr, hdr[:])
	kl := binary.LittleEndian.Uint32(hdr[0:])
	vl := binary.LittleEndian.Uint32(hdr[4:])
	val := make([]byte, vl)
	p.ReadMem(addr+8+uint64(kl), val)
	return int64(8 + kl + vl), string(val)
}

func decodeKey(p *aurora.Proc, addr uint64) (string, int64) {
	var hdr [8]byte
	p.ReadMem(addr, hdr[:])
	kl := binary.LittleEndian.Uint32(hdr[0:])
	key := make([]byte, kl)
	p.ReadMem(addr+8, key)
	return string(key), int64(kl)
}

func main() {
	m, err := aurora.NewMachine(aurora.Defaults())
	if err != nil {
		log.Fatal(err)
	}
	s, err := open(m, "kv")
	if err != nil {
		log.Fatal(err)
	}
	arena := s.arena

	// Phase 1: writes covered by a checkpoint.
	for i := 0; i < 100; i++ {
		if err := s.put(fmt.Sprintf("user:%03d", i), fmt.Sprintf("account-%d", i)); err != nil {
			log.Fatal(err)
		}
	}
	if err := s.checkpointAndTrim(); err != nil {
		log.Fatal(err)
	}
	// Phase 2: writes covered only by the journal.
	for i := 100; i < 120; i++ {
		if err := s.put(fmt.Sprintf("user:%03d", i), fmt.Sprintf("account-%d", i)); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("stored 120 keys (100 checkpointed, 20 journal-only)\n")

	// Crash.
	m2, err := m.Crash()
	if err != nil {
		log.Fatal(err)
	}
	g2, _, err := m2.Restore("kv")
	if err != nil {
		log.Fatal(err)
	}
	s2, replayed, err := recoverKV(g2, arena)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("recovered: %d keys in restored memory + journal, %d journal entries replayed\n",
		len(s2.index), replayed)
	for _, probe := range []string{"user:050", "user:110"} {
		v, ok := s2.get(probe)
		fmt.Printf("  %s = %q (found=%v)\n", probe, v, ok)
	}
}
