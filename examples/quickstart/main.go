// Quickstart: the single-level-store promise in 80 lines.
//
// An application keeps its state purely in memory — no save files, no
// serialization code. Aurora checkpoints it continuously; the machine
// crashes; the application resumes from the last checkpoint as if nothing
// happened.
package main

import (
	"encoding/binary"
	"fmt"
	"log"
	"time"

	"aurora"
)

func main() {
	// Boot a simulated machine: four striped NVMe devices, the Aurora
	// object store, a POSIX kernel, and the SLS orchestrator.
	m, err := aurora.NewMachine(aurora.Defaults())
	if err != nil {
		log.Fatal(err)
	}

	// The "application": a tally that lives only in process memory.
	p := m.Spawn("tally")
	va, err := p.Mmap(1<<20, aurora.ProtRead|aurora.ProtWrite, false)
	if err != nil {
		log.Fatal(err)
	}

	// Attach it to a consistency group: from here on, Aurora persists it
	// 100x per second (the 10 ms default period).
	g, err := m.Attach("tally", p)
	if err != nil {
		log.Fatal(err)
	}

	// Run: increment the tally in memory, doing no explicit persistence.
	bump := func(proc *aurora.Proc, n int) uint64 {
		var b [8]byte
		for i := 0; i < n; i++ {
			proc.ReadMem(va, b[:])
			v := binary.LittleEndian.Uint64(b[:]) + 1
			binary.LittleEndian.PutUint64(b[:], v)
			proc.WriteMem(va, b[:])
			m.Clock.Advance(250 * time.Microsecond) // pretend work
			g.MaybePeriodic()                       // the orchestrator's timer
		}
		proc.ReadMem(va, b[:])
		return binary.LittleEndian.Uint64(b[:])
	}
	v := bump(p, 1000)
	fmt.Printf("tally reached %d over %v of virtual time (%d checkpoints taken)\n",
		v, m.Now(), g.Checkpoints())

	// Power loss. Everything volatile — kernel, processes, memory — is
	// gone. The store recovers from the last complete checkpoint.
	m2, err := m.Crash()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("machine crashed and rebooted")

	g2, rst, err := m2.Restore("tally")
	if err != nil {
		log.Fatal(err)
	}
	p2 := g2.Procs()[0]
	var b [8]byte
	p2.ReadMem(va, b[:])
	fmt.Printf("restored %d process(es) in %v; tally resumed at %d\n",
		rst.Procs, rst.Time, binary.LittleEndian.Uint64(b[:]))

	// And it keeps running, oblivious to the interruption.
	g2.Period = 10 * time.Millisecond
	v2 := bump(p2, 500)
	fmt.Printf("tally now %d — the crash cost at most one checkpoint period of work\n", v2)
}
