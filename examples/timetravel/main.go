// timetravel: execution-history debugging (§3, §7).
//
// Aurora's object store retains the application's execution history as a
// series of incremental checkpoints. Any retained epoch restores in roughly
// constant time, so a developer can rewind a misbehaving application to the
// moment before the bug — and extract an ELF coredump of any point — without
// having arranged anything in advance.
package main

import (
	"encoding/binary"
	"fmt"
	"log"
	"os"
	"time"

	"aurora"
	"aurora/internal/elfcore"
)

func main() {
	m, err := aurora.NewMachine(aurora.Defaults())
	if err != nil {
		log.Fatal(err)
	}

	// The application: a balance that should never go negative... but a
	// "bug" will zero it somewhere along the way.
	p := m.Spawn("ledger")
	va, _ := p.Mmap(1<<20, aurora.ProtRead|aurora.ProtWrite, false)
	g, err := m.Attach("ledger", p)
	if err != nil {
		log.Fatal(err)
	}
	g.RetainEpochs = 0 // keep the full execution history

	write := func(v uint64) {
		var b [8]byte
		binary.LittleEndian.PutUint64(b[:], v)
		p.WriteMem(va, b[:])
	}
	read := func(proc *aurora.Proc) uint64 {
		var b [8]byte
		proc.ReadMem(va, b[:])
		return binary.LittleEndian.Uint64(b[:])
	}

	// Run with periodic checkpoints, recording the epoch timeline.
	type moment struct {
		step    int
		balance uint64
		epoch   aurora.Epoch
	}
	var timeline []moment
	balance := uint64(100)
	for step := 1; step <= 12; step++ {
		balance += 10
		if step == 9 {
			balance = 0 // the bug strikes
		}
		write(balance)
		m.Clock.Advance(time.Millisecond)
		st, err := g.Checkpoint(aurora.CkptIncremental)
		if err != nil {
			log.Fatal(err)
		}
		timeline = append(timeline, moment{step, balance, st.Epoch})
	}
	fmt.Printf("ran 12 steps; final balance %d (corrupted at step 9)\n", read(p))
	fmt.Printf("history: %d restorable epochs\n", len(m.History()))

	// Bisect the history for the corruption.
	lo, hi := 0, len(timeline)-1
	for lo < hi {
		mid := (lo + hi) / 2
		gm, _, err := m.RestoreAt("ledger", timeline[mid].epoch)
		if err != nil {
			log.Fatal(err)
		}
		if read(gm.Procs()[0]) == 0 {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	bad := timeline[lo]
	fmt.Printf("bisected: corruption first visible at step %d (epoch %d)\n", bad.step, bad.epoch)

	// Rewind to just before the bug and inspect.
	before := timeline[lo-1]
	gb, _, err := m.RestoreAt("ledger", before.epoch)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("rewound to step %d: balance %d (pre-bug state recovered)\n",
		before.step, read(gb.Procs()[0]))

	// Extract a coredump of the pre-bug state for offline debugging.
	f, err := os.CreateTemp("", "ledger-*.core")
	if err != nil {
		log.Fatal(err)
	}
	defer os.Remove(f.Name())
	n, err := elfcore.Write(f, gb.Procs()[0])
	if err != nil {
		log.Fatal(err)
	}
	f.Close()
	fmt.Printf("wrote pre-bug coredump: %s (%d bytes)\n", f.Name(), n)
}
