package aurora

import (
	"encoding/json"
	"strings"
	"testing"
	"time"
)

// inspectWorld boots a machine with one checkpointed group and returns it.
func inspectWorld(t *testing.T) (*Machine, *Proc) {
	t.Helper()
	cfg := Defaults()
	cfg.Trace = true
	m, err := NewMachine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	p := m.Spawn("app")
	if _, err := m.Attach("app", p); err != nil {
		t.Fatal(err)
	}
	va, err := p.Mmap(1<<20, ProtRead|ProtWrite, false)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.WriteMem(va, []byte("inspect me")); err != nil {
		t.Fatal(err)
	}
	if _, _, err := p.Pipe(); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Checkpoint("app"); err != nil {
		t.Fatal(err)
	}
	return m, p
}

func TestInspectReport(t *testing.T) {
	m, _ := inspectWorld(t)
	r := m.Inspect(0)

	if r.Store.Epoch == 0 || r.Store.ObjectsLive == 0 {
		t.Fatalf("store section empty: %+v", r.Store)
	}
	if len(r.Groups) != 1 || r.Groups[0].Name != "app" {
		t.Fatalf("groups: %+v", r.Groups)
	}
	g := r.Groups[0]
	if g.Checkpoints != 1 || len(g.Procs) != 1 {
		t.Fatalf("group row: %+v", g)
	}
	p := g.Procs[0]
	if p.MapEntries == 0 || len(p.FDs) != 2 {
		t.Fatalf("proc row: %+v", p)
	}
	kinds := map[string]bool{}
	for _, fd := range p.FDs {
		kinds[fd.Kind] = true
	}
	if !kinds["pipe-r"] || !kinds["pipe-w"] {
		t.Fatalf("fd kinds: %+v", p.FDs)
	}
	// The live flight tail saw the checkpoint.
	var begin, end bool
	for _, ev := range r.Flight {
		switch ev.Kind {
		case "ckpt.begin":
			begin = true
		case "ckpt.end":
			end = true
		}
	}
	if !begin || !end {
		t.Fatalf("flight tail missing checkpoint events: %+v", r.Flight)
	}
	if !r.Audit.OK() {
		t.Fatalf("audit: %s", r.Audit)
	}
	// Text renders every section.
	text := r.Text()
	for _, want := range []string{"store:", "groups (1):", "flight tail", "audit: ok"} {
		if !strings.Contains(text, want) {
			t.Fatalf("text missing %q:\n%s", want, text)
		}
	}
}

// TestInspectJSONGolden pins the JSON field names: `sls inspect --json` is a
// machine interface, and silently renaming a key breaks its consumers. New
// fields may be added; the ones listed here must stay.
func TestInspectJSONGolden(t *testing.T) {
	m, _ := inspectWorld(t)
	raw, err := json.Marshal(m.Inspect(8))
	if err != nil {
		t.Fatal(err)
	}
	var top map[string]json.RawMessage
	if err := json.Unmarshal(raw, &top); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"time_ns", "store", "groups", "flight", "audit"} {
		if _, ok := top[key]; !ok {
			t.Fatalf("top-level key %q missing in %s", key, raw)
		}
	}
	var store map[string]json.RawMessage
	if err := json.Unmarshal(top["store"], &store); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"epoch", "checkpoints", "objects_live", "data_bytes", "meta_bytes", "retained"} {
		if _, ok := store[key]; !ok {
			t.Fatalf("store key %q missing in %s", key, top["store"])
		}
	}
	var groups []map[string]json.RawMessage
	if err := json.Unmarshal(top["groups"], &groups); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"name", "id", "epoch", "checkpoints", "procs"} {
		if _, ok := groups[0][key]; !ok {
			t.Fatalf("group key %q missing in %s", key, top["groups"])
		}
	}
	var flightEvs []map[string]json.RawMessage
	if err := json.Unmarshal(top["flight"], &flightEvs); err != nil {
		t.Fatal(err)
	}
	if len(flightEvs) == 0 {
		t.Fatal("flight section empty")
	}
	for _, key := range []string{"at_ns", "kind", "a", "b", "c"} {
		if _, ok := flightEvs[0][key]; !ok {
			t.Fatalf("flight key %q missing in %s", key, top["flight"])
		}
	}
	var aud map[string]json.RawMessage
	if err := json.Unmarshal(top["audit"], &aud); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"rules", "objects", "violations"} {
		if _, ok := aud[key]; !ok {
			t.Fatalf("audit key %q missing in %s", key, top["audit"])
		}
	}
}

func TestRecoveredFlightAfterCrash(t *testing.T) {
	m, _ := inspectWorld(t)
	// A second checkpoint so the persisted ring holds the first one's
	// events (the ring snapshot is taken at the start of each commit).
	if _, err := m.Checkpoint("app"); err != nil {
		t.Fatal(err)
	}
	cutAt := m.Now()

	m2, err := m.Crash()
	if err != nil {
		t.Fatal(err)
	}
	evs, seq, ok, err := m2.RecoveredFlight()
	if err != nil {
		t.Fatal(err)
	}
	if !ok || len(evs) == 0 {
		t.Fatalf("no recovered flight (ok=%v, %d events)", ok, len(evs))
	}
	if seq == 0 {
		t.Fatal("recovered seq = 0")
	}
	// Every recovered event predates the crash, and the timeline contains
	// the checkpoint that persisted it.
	var sawBegin bool
	for _, ev := range evs {
		if ev.At > int64(cutAt) {
			t.Fatalf("recovered event after the crash point: %s", ev)
		}
		if ev.Kind.String() == "ckpt.begin" {
			sawBegin = true
		}
	}
	if !sawBegin {
		t.Fatalf("no ckpt.begin in recovered timeline: %v", evs)
	}

	// The rebooted machine restores and passes its self-check.
	if _, _, err := m2.Restore("app"); err != nil {
		t.Fatal(err)
	}
	r := m2.Inspect(32)
	if len(r.Recovered) == 0 {
		t.Fatal("inspect shows no recovered flight section")
	}
	if !r.Audit.OK() {
		t.Fatalf("post-restore audit: %s", r.Audit)
	}
}

func TestWatchdogRunsDuringPeriodic(t *testing.T) {
	m, p := inspectWorld(t)
	m.StartWatchdog(5 * time.Millisecond)
	va, err := p.Mmap(1<<16, ProtRead|ProtWrite, false)
	if err != nil {
		t.Fatal(err)
	}
	i := 0
	err = m.RunPeriodic("app", 50*time.Millisecond, func() error {
		i++
		m.Clock.Advance(time.Millisecond)
		return p.WriteMem(va, []byte{byte(i)})
	})
	if err != nil {
		t.Fatal(err)
	}
	if m.wd.Runs() < 2 {
		t.Fatalf("watchdog ran %d times over 50ms at 5ms cadence", m.wd.Runs())
	}
}
