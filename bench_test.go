package aurora_test

// One benchmark per table and figure of the paper's evaluation (§9). Each
// runs the corresponding experiment harness at Quick scale and reports the
// headline quantity as custom benchmark metrics (virtual time or virtual
// throughput), alongside the real wall-time cost of the simulation itself.
// Run the full-scale versions with: go run ./cmd/slsbench all
//
// Ablation benchmarks at the bottom measure the design choices DESIGN.md
// calls out: collapse direction, lazy vs eager restore, external synchrony,
// and inode-reference vs path-lookup vnode checkpointing.

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"aurora"
	"aurora/internal/experiments"
	"aurora/internal/vm"
)

// metric builds a ReportMetric unit from free-form labels (no whitespace).
func metric(parts ...string) string {
	s := strings.Join(parts, "-")
	s = strings.ReplaceAll(s, " ", "_")
	return s
}

// BenchmarkTable1CRIU reports the CRIU stop time for the Redis dump.
func BenchmarkTable1CRIU(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Table1(experiments.Quick)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(r.CRIU.TotalStopTime.Microseconds()), "stop-us")
		b.ReportMetric(float64(r.CRIU.IOWriteTime.Microseconds()), "iowrite-us")
	}
}

func benchFig3(b *testing.B, fn func(experiments.Scale) (experiments.Fig3Result, error)) {
	for i := 0; i < b.N; i++ {
		r, err := fn(experiments.Quick)
		if err != nil {
			b.Fatal(err)
		}
		for wl, byFS := range r.Results {
			for fs, res := range byFS {
				b.ReportMetric(res.OpsPerSec(), metric(wl, fs, "ops/s"))
			}
		}
	}
}

// BenchmarkFig3a reports 64 KiB write throughput per file system.
func BenchmarkFig3a(b *testing.B) { benchFig3(b, experiments.Fig3a) }

// BenchmarkFig3b reports 4 KiB write throughput per file system.
func BenchmarkFig3b(b *testing.B) { benchFig3(b, experiments.Fig3b) }

// BenchmarkFig3c reports createfiles and write+fsync ops/s per file system.
func BenchmarkFig3c(b *testing.B) { benchFig3(b, experiments.Fig3c) }

// BenchmarkFig3d reports fileserver/varmail/webserver ops/s per file system.
func BenchmarkFig3d(b *testing.B) { benchFig3(b, experiments.Fig3d) }

// BenchmarkTable4 reports per-object checkpoint/restore microseconds.
func BenchmarkTable4(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Table4()
		if err != nil {
			b.Fatal(err)
		}
		for _, row := range r.Rows {
			b.ReportMetric(float64(row.Checkpoint.Nanoseconds())/1e3, metric(row.Object, "ckpt-us"))
		}
	}
}

// BenchmarkTable5 reports stop time per API mode at 4 KiB and 16 MiB.
func BenchmarkTable5(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Table5(experiments.Quick)
		if err != nil {
			b.Fatal(err)
		}
		first, last := r.Rows[0], r.Rows[len(r.Rows)-1]
		b.ReportMetric(float64(first.Incremental.Microseconds()), "4Ki-incr-us")
		b.ReportMetric(float64(first.Journaled.Microseconds()), "4Ki-journal-us")
		b.ReportMetric(float64(last.Incremental.Microseconds()), "16Mi-incr-us")
	}
}

// BenchmarkTable6 reports checkpoint stop times for the application profiles.
func BenchmarkTable6(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Table6(experiments.Quick)
		if err != nil {
			b.Fatal(err)
		}
		for _, row := range r.Rows {
			b.ReportMetric(float64(row.CkptIncr.Microseconds()), metric(row.App, "incr-us"))
			b.ReportMetric(float64(row.RestoreLazy.Microseconds()), metric(row.App, "lazy-us"))
		}
	}
}

// BenchmarkFig4 reports Memcached throughput at baseline, 10 ms, and 100 ms.
func BenchmarkFig4(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig4(experiments.Quick)
		if err != nil {
			b.Fatal(err)
		}
		for _, pt := range r.Points {
			label := "baseline"
			if pt.PeriodMS > 0 {
				label = fmt.Sprintf("%dms", pt.PeriodMS)
			}
			b.ReportMetric(pt.Throughput, metric(label, "ops/s"))
		}
	}
}

// BenchmarkFig5 reports Memcached pegged-load latency per period.
func BenchmarkFig5(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig5(experiments.Quick)
		if err != nil {
			b.Fatal(err)
		}
		for _, pt := range r.Points {
			label := "baseline"
			if pt.PeriodMS > 0 {
				label = fmt.Sprintf("%dms", pt.PeriodMS)
			}
			b.ReportMetric(float64(pt.AvgLatency.Microseconds()), metric(label, "avg-us"))
		}
	}
}

// BenchmarkFig6 reports RocksDB throughput per configuration.
func BenchmarkFig6(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig6(experiments.Quick)
		if err != nil {
			b.Fatal(err)
		}
		for _, row := range r.Rows {
			b.ReportMetric(row.Throughput, metric(row.Config.String(), "ops/s"))
		}
	}
}

// BenchmarkTable7 reports the three checkpointers' stop times.
func BenchmarkTable7(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Table7(experiments.Quick)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(r.AuroraStop.Microseconds()), "aurora-stop-us")
		b.ReportMetric(float64(r.CRIU.TotalStopTime.Microseconds()), "criu-stop-us")
		b.ReportMetric(float64(r.RDBStop.Microseconds()), "rdb-stop-us")
	}
}

// --- Ablations ---

// buildShadowed creates a map with a large base, one dirty page, and a
// frozen shadow ready to collapse.
func buildShadowed(b *testing.B, basePages int) (*aurora.Machine, []vm.ShadowPair) {
	b.Helper()
	m, err := aurora.NewMachine(aurora.Defaults())
	if err != nil {
		b.Fatal(err)
	}
	p := m.Spawn("ablate")
	va, err := p.Mmap(int64(basePages)*aurora.PageSize, aurora.ProtRead|aurora.ProtWrite, false)
	if err != nil {
		b.Fatal(err)
	}
	buf := make([]byte, aurora.PageSize)
	for i := 0; i < basePages; i++ {
		if err := p.WriteMem(va+uint64(i)*aurora.PageSize, buf); err != nil {
			b.Fatal(err)
		}
	}
	vm.SystemShadow(m.K.VM, []*vm.Map{p.Mem}, nil)
	if err := p.WriteMem(va, buf); err != nil { // one dirty page in S1
		b.Fatal(err)
	}
	pairs := vm.SystemShadow(m.K.VM, []*vm.Map{p.Mem}, nil)
	return m, pairs
}

// BenchmarkAblationCollapseReverse measures Aurora's collapse direction
// (move the shadow's few pages down) on a 4096-page base with 1 dirty page.
// ns/op includes the structure build; the collapse itself is reported via
// the virtual-ns metric.
func BenchmarkAblationCollapseReverse(b *testing.B) {
	for i := 0; i < b.N; i++ {
		m, pairs := buildShadowed(b, 4096)
		before := m.Clock.Now()
		moved := vm.CollapseFlushed(pairs[0].Live, pairs[0].Frozen, vm.CollapseReverse)
		b.ReportMetric(float64(moved), "pages-moved")
		b.ReportMetric(float64((m.Clock.Now() - before).Nanoseconds()), "virtual-ns")
	}
}

// BenchmarkAblationCollapseLegacy measures the original Mach direction
// (move the parent's many pages up) on the identical structure.
func BenchmarkAblationCollapseLegacy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		m, pairs := buildShadowed(b, 4096)
		before := m.Clock.Now()
		moved := vm.CollapseFlushed(pairs[0].Live, pairs[0].Frozen, vm.CollapseForwardLegacy)
		b.ReportMetric(float64(moved), "pages-moved")
		b.ReportMetric(float64((m.Clock.Now() - before).Nanoseconds()), "virtual-ns")
	}
}

// benchRestore measures eager vs lazy restore of a 64 MiB process. ns/op
// includes building and checkpointing the process; the restore itself is
// the virtual-us metric.
func benchRestore(b *testing.B, lazy bool) {
	for i := 0; i < b.N; i++ {
		m, _ := aurora.NewMachine(aurora.Defaults())
		p := m.Spawn("app")
		va, _ := p.Mmap(64<<20, aurora.ProtRead|aurora.ProtWrite, false)
		buf := make([]byte, aurora.PageSize)
		for pg := 0; pg < (64<<20)/aurora.PageSize; pg++ {
			p.WriteMem(va+uint64(pg)*aurora.PageSize, buf[:1])
		}
		m.Attach("app", p)
		if _, err := m.Checkpoint("app"); err != nil {
			b.Fatal(err)
		}
		m2, err := m.Crash()
		if err != nil {
			b.Fatal(err)
		}
		var rst aurora.RestoreStats
		if lazy {
			_, rst, err = m2.RestoreLazily("app")
		} else {
			_, rst, err = m2.Restore("app")
		}
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(rst.Time.Microseconds()), "virtual-us")
	}
}

// BenchmarkAblationRestoreEager measures a full (eager) 64 MiB restore.
func BenchmarkAblationRestoreEager(b *testing.B) { benchRestore(b, false) }

// BenchmarkAblationRestoreLazy measures a lazy 64 MiB restore.
func BenchmarkAblationRestoreLazy(b *testing.B) { benchRestore(b, true) }

// BenchmarkAblationVnodeByPath measures what vnode checkpointing would cost
// with namei path lookups instead of inode references (§5.2's optimization),
// comparing the charged virtual time of both strategies over 100 vnodes.
func BenchmarkAblationVnodeByPath(b *testing.B) {
	m, _ := aurora.NewMachine(aurora.Defaults())
	p := m.Spawn("files")
	for i := 0; i < 100; i++ {
		if _, err := p.Open(fmt.Sprintf("/f%03d", i), aurora.ORead|aurora.OWrite, true); err != nil {
			b.Fatal(err)
		}
	}
	m.Attach("files", p)
	m.Checkpoint("files")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st, err := m.Checkpoint("files")
		if err != nil {
			b.Fatal(err)
		}
		byRef := st.OSTime
		// The path-lookup alternative adds a namei per vnode.
		byPath := byRef + 100*m.Costs.VnodePathLookup
		b.ReportMetric(float64(byRef.Microseconds()), "inode-ref-us")
		b.ReportMetric(float64(byPath.Microseconds()), "path-lookup-us")
	}
}

// BenchmarkAblationExternalSynchrony measures the latency a cross-group
// message pays for external synchrony versus an fdctl-exempted socket.
func BenchmarkAblationExternalSynchrony(b *testing.B) {
	for _, es := range []bool{true, false} {
		name := "enabled"
		if !es {
			name = "fdctl-disabled"
		}
		b.Run(name, func(b *testing.B) {
			m, _ := aurora.NewMachine(aurora.Defaults())
			app := m.Spawn("app")
			ext := m.Spawn("client")
			g, _ := m.Attach("app", app)
			efd, _ := ext.Socket(aurora.SockUDP)
			ext.Bind(efd, "10.0.0.9:1")
			afd, _ := app.Socket(aurora.SockUDP)
			app.Bind(afd, "10.0.0.1:1")
			if !es {
				if err := g.FdCtl(app, afd, true); err != nil {
					b.Fatal(err)
				}
			}
			b.ResetTimer()
			var total time.Duration
			for i := 0; i < b.N; i++ {
				sent := m.Now()
				app.SendTo(afd, "10.0.0.9:1", []byte("response"))
				if es {
					if _, err := g.Checkpoint(aurora.CkptIncremental); err != nil {
						b.Fatal(err)
					}
					if err := g.Barrier(); err != nil {
						b.Fatal(err)
					}
				}
				buf := make([]byte, 16)
				if _, err := ext.Read(efd, buf); err != nil {
					b.Fatal(err)
				}
				total += m.Now() - sent
			}
			b.ReportMetric(float64(total.Microseconds())/float64(b.N), "virtual-us/msg")
		})
	}
}
