package aurora

import (
	"bytes"
	"testing"
)

func TestFacadeSuspendResume(t *testing.T) {
	m, _ := NewMachine(Defaults())
	p := m.Spawn("app")
	m.Attach("app", p)
	va, _ := p.Mmap(1<<20, ProtRead|ProtWrite, false)
	p.WriteMem(va, []byte("idle"))
	if err := m.Suspend("app"); err != nil {
		t.Fatal(err)
	}
	if !p.Exited() {
		t.Fatal("process alive after suspend")
	}
	g, _, err := m.Restore("app")
	if err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 4)
	g.Procs()[0].ReadMem(va, got)
	if string(got) != "idle" {
		t.Fatalf("resumed state %q", got)
	}
	if err := m.Suspend("nope"); err == nil {
		t.Fatal("suspend of unknown group succeeded")
	}
}

func TestFacadeMigrateTo(t *testing.T) {
	a, _ := NewMachine(Defaults())
	b, _ := NewMachine(Defaults())
	p := a.Spawn("svc")
	a.Attach("svc", p)
	va, _ := p.Mmap(1<<20, ProtRead|ProtWrite, false)
	p.WriteMem(va, []byte("v0"))

	rounds := 0
	g, st, err := a.MigrateTo(b, "svc", 2, func() error {
		rounds++
		return p.WriteMem(va, []byte{'v', byte('0' + rounds)})
	})
	if err != nil {
		t.Fatal(err)
	}
	if st.Rounds != 4 || len(st.RoundBytes) != 4 {
		t.Fatalf("stats %+v", st)
	}
	got := make([]byte, 2)
	g.Procs()[0].ReadMem(va, got)
	if string(got) != "v2" {
		t.Fatalf("migrated state %q, want v2", got)
	}
	// Destination can keep checkpointing it.
	if _, err := b.Checkpoint("svc"); err != nil {
		t.Fatal(err)
	}
}

func TestFacadeReplicateTo(t *testing.T) {
	a, _ := NewMachine(Defaults())
	b, _ := NewMachine(Defaults())
	p := a.Spawn("db")
	a.Attach("db", p)
	va, _ := p.Mmap(1<<20, ProtRead|ProtWrite, false)
	p.WriteMem(va, []byte("r0"))
	rep, err := a.ReplicateTo(b, "db")
	if err != nil {
		t.Fatal(err)
	}
	p.WriteMem(va, []byte("r1"))
	if err := rep.Sync(); err != nil {
		t.Fatal(err)
	}
	g, _, err := rep.Failover(RestoreEager)
	if err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 2)
	g.Procs()[0].ReadMem(va, got)
	if string(got) != "r1" {
		t.Fatalf("failover state %q", got)
	}
	if _, err := a.ReplicateTo(b, "missing"); err == nil {
		t.Fatal("replicate of unknown group succeeded")
	}
}

func TestImageBootRoundTrip(t *testing.T) {
	m, _ := NewMachine(Config{StorageBytes: 1 << 30})
	p := m.Spawn("app")
	m.Attach("app", p)
	va, _ := p.Mmap(1<<20, ProtRead|ProtWrite, false)
	p.WriteMem(va, []byte("imaged"))
	if _, err := m.Checkpoint("app"); err != nil {
		t.Fatal(err)
	}
	g, _ := m.Group("app")
	if err := g.Barrier(); err != nil {
		t.Fatal(err)
	}

	var img bytes.Buffer
	if err := m.SaveImage(&img); err != nil {
		t.Fatal(err)
	}
	m2, err := BootImage(&img, Config{})
	if err != nil {
		t.Fatal(err)
	}
	names, err := m2.PersistedGroups()
	if err != nil || len(names) != 1 || names[0] != "app" {
		t.Fatalf("groups = %v err=%v", names, err)
	}
	g2, _, err := m2.Restore("app")
	if err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 6)
	g2.Procs()[0].ReadMem(va, got)
	if string(got) != "imaged" {
		t.Fatalf("booted state %q", got)
	}
}
